package lists

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/fixture"
	"repro/internal/vec"
)

// randTuple draws a non-empty sparse tuple over m dimensions (empty
// tuples are rejected payloads: they encode tombstones on disk).
func randTuple(rng *rand.Rand, m int) vec.Sparse {
	var entries []vec.Entry
	for len(entries) == 0 {
		for d := 0; d < m; d++ {
			if rng.Float64() < 0.5 {
				entries = append(entries, vec.Entry{Dim: d, Val: 0.05 + 0.95*rng.Float64()})
			}
		}
	}
	t, err := vec.NewSparse(entries)
	if err != nil {
		panic(err)
	}
	return t
}

// applyRandomOps drives a random mutation sequence against ix while
// mirroring it in shadow (nil = deleted). Returns the shadow.
func applyRandomOps(t *testing.T, rng *rand.Rand, ix Mutable, shadow []vec.Sparse, m, nOps int) []vec.Sparse {
	t.Helper()
	live := func() []int {
		var ids []int
		for id, tu := range shadow {
			if tu != nil {
				ids = append(ids, id)
			}
		}
		return ids
	}
	for op := 0; op < nOps; op++ {
		switch ids := live(); {
		case len(ids) == 0 || rng.Float64() < 0.4:
			tu := randTuple(rng, m)
			id, err := ix.Insert(tu)
			if err != nil {
				t.Fatalf("insert: %v", err)
			}
			if id != len(shadow) {
				t.Fatalf("insert id %d, want %d", id, len(shadow))
			}
			shadow = append(shadow, tu)
		case rng.Float64() < 0.6:
			id := ids[rng.Intn(len(ids))]
			tu := randTuple(rng, m)
			old, err := ix.Update(id, tu)
			if err != nil {
				t.Fatalf("update %d: %v", id, err)
			}
			if old.String() != shadow[id].String() {
				t.Fatalf("update %d returned old %v, want %v", id, old, shadow[id])
			}
			shadow[id] = tu
		default:
			id := ids[rng.Intn(len(ids))]
			old, err := ix.Delete(id)
			if err != nil {
				t.Fatalf("delete %d: %v", id, err)
			}
			if old.String() != shadow[id].String() {
				t.Fatalf("delete %d returned old %v, want %v", id, old, shadow[id])
			}
			shadow[id] = nil
		}
	}
	return shadow
}

// assertIndexEquals checks that got serves exactly the same postings,
// list lengths and tuples as a MemIndex freshly built on shadow.
func assertIndexEquals(t *testing.T, got Index, shadow []vec.Sparse, m int) {
	t.Helper()
	want := NewMemIndex(shadow, m)
	if got.NumTuples() != want.NumTuples() {
		t.Fatalf("NumTuples %d, want %d", got.NumTuples(), want.NumTuples())
	}
	for d := 0; d < m; d++ {
		if got.ListLen(d) != want.ListLen(d) {
			t.Fatalf("ListLen(%d) = %d, want %d", d, got.ListLen(d), want.ListLen(d))
		}
		gc, wc := got.Cursor(d), want.Cursor(d)
		for i := 0; ; i++ {
			gp, gok := gc.Next()
			wp, wok := wc.Next()
			if gok != wok {
				t.Fatalf("dim %d posting %d: ok %v vs %v", d, i, gok, wok)
			}
			if !gok {
				break
			}
			if gp != wp {
				t.Fatalf("dim %d posting %d: %v, want %v", d, i, gp, wp)
			}
		}
	}
	for id := range shadow {
		g, w := got.Tuple(id), want.Tuple(id)
		if g.String() != w.String() {
			t.Fatalf("tuple %d: %v, want %v", id, g, w)
		}
	}
}

// TestMemIndexMutationsMatchRebuild: after a random op sequence the
// mutated MemIndex is bit-for-bit the index a fresh build on the
// post-update dataset would produce — same posting order (val desc, id
// asc), same list lengths, same tuples.
func TestMemIndexMutationsMatchRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const m = 5
	for trial := 0; trial < 20; trial++ {
		var shadow []vec.Sparse
		for i := 0; i < 8; i++ {
			shadow = append(shadow, randTuple(rng, m))
		}
		ix := NewMemIndex(cloneTuples(shadow), m)
		shadow = applyRandomOps(t, rng, ix, shadow, m, 30)
		assertIndexEquals(t, ix, shadow, m)
	}
}

func cloneTuples(ts []vec.Sparse) []vec.Sparse {
	out := make([]vec.Sparse, len(ts))
	for i, t := range ts {
		if t != nil {
			out[i] = t.Clone()
		}
	}
	return out
}

// TestMemIndexMutationErrors pins the rejection paths: out-of-range
// ids, double deletes, updates of deleted tuples, and out-of-domain
// payloads.
func TestMemIndexMutationErrors(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	ix := NewMemIndex(cloneTuples(tuples), 2)

	if _, err := ix.Update(99, vec.MustSparse(vec.Entry{Dim: 0, Val: 0.5})); err == nil {
		t.Fatal("update out of range accepted")
	}
	if _, err := ix.Delete(-1); err == nil {
		t.Fatal("delete out of range accepted")
	}
	if _, err := ix.Insert(vec.MustSparse(vec.Entry{Dim: 2, Val: 0.5})); err == nil {
		t.Fatal("insert with dim ≥ m accepted")
	}
	if _, err := ix.Insert(vec.Sparse{{Dim: 0, Val: 1.5}}); err == nil {
		t.Fatal("insert with value > 1 accepted")
	}
	if _, err := ix.Delete(3); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := ix.Delete(3); err == nil {
		t.Fatal("double delete accepted")
	}
	if _, err := ix.Update(3, vec.MustSparse(vec.Entry{Dim: 0, Val: 0.5})); err == nil {
		t.Fatal("update of deleted tuple accepted")
	}
	if got := ix.Tuple(3); len(got) != 0 {
		t.Fatalf("deleted tuple reads %v, want empty", got)
	}
}

// TestOverlayMatchesRebuild: the disk-backed write overlay, driven by
// the same random op sequence, serves exactly what a fresh in-memory
// index on the post-update dataset serves.
func TestOverlayMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const m = 4
	var base []vec.Sparse
	for i := 0; i < 10; i++ {
		base = append(base, randTuple(rng, m))
	}
	dir := t.TempDir()
	tp, lp := filepath.Join(dir, "tuples.dat"), filepath.Join(dir, "lists.dat")
	if err := SaveDataset(tp, lp, base, m); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenDiskIndex(tp, lp, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	ov := NewOverlay(disk)
	shadow := applyRandomOps(t, rng, ov, cloneTuples(base), m, 40)
	assertIndexEquals(t, ov, shadow, m)

	// Cursor clones resume independently at the merge position.
	c := ov.Cursor(0)
	c.Next()
	cl := c.Clone()
	for {
		p1, ok1 := c.Next()
		p2, ok2 := cl.Next()
		if ok1 != ok2 || p1 != p2 {
			t.Fatalf("clone diverged: %v/%v vs %v/%v", p1, ok1, p2, ok2)
		}
		if !ok1 {
			break
		}
	}
}

// TestOverlayErrorPaths pins the overlay's rejection paths, including
// deletes and updates of overlay-resident (inserted) tuples.
func TestOverlayErrorPaths(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	ov := NewOverlay(NewMemIndex(cloneTuples(tuples), 2))

	id, err := ov.Insert(vec.MustSparse(vec.Entry{Dim: 0, Val: 0.4}))
	if err != nil || id != 4 {
		t.Fatalf("insert: id %d err %v", id, err)
	}
	if _, err := ov.Delete(id); err != nil {
		t.Fatalf("delete inserted: %v", err)
	}
	if _, err := ov.Delete(id); err == nil {
		t.Fatal("double delete of inserted tuple accepted")
	}
	if _, err := ov.Update(id, vec.MustSparse(vec.Entry{Dim: 1, Val: 0.2})); err == nil {
		t.Fatal("update of deleted inserted tuple accepted")
	}
	if _, err := ov.Delete(1); err != nil {
		t.Fatalf("delete base: %v", err)
	}
	if _, err := ov.Delete(1); err == nil {
		t.Fatal("double delete of base tuple accepted")
	}
	if _, err := ov.Update(1, vec.MustSparse(vec.Entry{Dim: 1, Val: 0.2})); err == nil {
		t.Fatal("update of deleted base tuple accepted")
	}
	if _, err := ov.Update(99, nil); err == nil {
		t.Fatal("update out of range accepted")
	}
}

// TestOverlayDeltaStats pins the observable delta accounting the
// checkpointer triggers on: counts track live inserts, overrides and
// tombstones exactly, and the byte estimate grows with the delta.
func TestOverlayDeltaStats(t *testing.T) {
	tuples, _, _ := fixture.RunningExample()
	ov := NewOverlay(NewMemIndex(cloneTuples(tuples), 2))

	if st := ov.DeltaStats(); st != (DeltaStats{Bytes: st.Bytes}) || st.Bytes < 0 {
		t.Fatalf("fresh overlay delta %+v, want zero counts", st)
	}

	id, err := ov.Insert(vec.MustSparse(vec.Entry{Dim: 0, Val: 0.4}, vec.Entry{Dim: 1, Val: 0.3}))
	if err != nil {
		t.Fatal(err)
	}
	st := ov.DeltaStats()
	if st.Added != 1 || st.Overridden != 0 || st.Tombstoned != 0 || st.DeltaPostings != 2 {
		t.Fatalf("after insert: %+v", st)
	}
	prevBytes := st.Bytes

	if _, err := ov.Update(0, vec.MustSparse(vec.Entry{Dim: 0, Val: 0.9})); err != nil {
		t.Fatal(err)
	}
	st = ov.DeltaStats()
	if st.Added != 1 || st.Overridden != 1 || st.Tombstoned != 0 || st.DeltaPostings != 3 {
		t.Fatalf("after update: %+v", st)
	}
	if st.Bytes <= prevBytes {
		t.Fatalf("bytes did not grow: %d -> %d", prevBytes, st.Bytes)
	}

	if _, err := ov.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := ov.Delete(id); err != nil {
		t.Fatal(err)
	}
	st = ov.DeltaStats()
	if st.Added != 0 || st.Overridden != 1 || st.Tombstoned != 2 || st.DeltaPostings != 1 {
		t.Fatalf("after deletes: %+v", st)
	}

	// The accounting is incremental; a long random op sequence must not
	// let it drift from a from-scratch recount.
	rng := rand.New(rand.NewSource(7))
	applyRandomOps(t, rng, ov, cloneTuples(ov.Materialize()), 2, 200)
	if got, want := ov.DeltaStats(), recountDelta(ov); got != want {
		t.Fatalf("incremental delta stats drifted:\n got  %+v\n want %+v", got, want)
	}
}

// recountDelta recomputes DeltaStats by scanning the overlay's internal
// state — the oracle the incremental counters are checked against.
func recountDelta(ov *Overlay) DeltaStats {
	var st DeltaStats
	for _, t := range ov.added {
		if t == nil {
			st.Tombstoned++
			st.Bytes += tombBytes
			continue
		}
		st.Added++
		st.Bytes += tupleBytes(t)
	}
	for _, e := range ov.over {
		if e.dead {
			st.Tombstoned++
			st.Bytes += tombBytes
			continue
		}
		st.Overridden++
		st.Bytes += tupleBytes(e.t)
	}
	for _, pl := range ov.delta {
		st.DeltaPostings += pl.Len()
		st.Bytes += 12 * int64(pl.Len())
	}
	st.Bytes += 8 * int64(len(ov.deadBase))
	return st
}

// TestOverlayMaterialize: the materialized snapshot is exactly the live
// view (nil at tombstoned slots), it leaves the overlay's meter
// untouched, and a dataset saved from it round-trips through the disk
// format to the same answers.
func TestOverlayMaterialize(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const m = 4
	var base []vec.Sparse
	for i := 0; i < 12; i++ {
		base = append(base, randTuple(rng, m))
	}
	dir := t.TempDir()
	tp, lp := filepath.Join(dir, "tuples.dat"), filepath.Join(dir, "lists.dat")
	if err := SaveDataset(tp, lp, base, m); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenDiskIndex(tp, lp, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	ov := NewOverlay(disk)
	shadow := applyRandomOps(t, rng, ov, cloneTuples(base), m, 30)

	seq0, rnd0, by0 := ov.Stats().Snapshot()
	mat := ov.Materialize()
	if seq1, rnd1, by1 := ov.Stats().Snapshot(); seq1 != seq0 || rnd1 != rnd0 || by1 != by0 {
		t.Fatalf("materialize charged the overlay meter: seq %d→%d rand %d→%d", seq0, seq1, rnd0, rnd1)
	}
	if len(mat) != len(shadow) {
		t.Fatalf("materialized %d tuples, want %d", len(mat), len(shadow))
	}
	for id := range shadow {
		if (mat[id] == nil) != (shadow[id] == nil) {
			t.Fatalf("tuple %d: materialized nil=%v, shadow nil=%v", id, mat[id] == nil, shadow[id] == nil)
		}
		if mat[id].String() != shadow[id].String() {
			t.Fatalf("tuple %d: %v, want %v", id, mat[id], shadow[id])
		}
	}

	// The snapshot survives the disk round-trip: ids stay stable (nil
	// slots become empty records) and the reopened files serve the same
	// index state.
	tp2, lp2 := filepath.Join(dir, "tuples2.dat"), filepath.Join(dir, "lists2.dat")
	if err := SaveDataset(tp2, lp2, mat, m); err != nil {
		t.Fatal(err)
	}
	disk2, err := OpenDiskIndex(tp2, lp2, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer disk2.Close()
	assertIndexEquals(t, disk2, shadow, m)
}
