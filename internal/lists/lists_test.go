package lists

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/fixture"
	"repro/internal/storage"
	"repro/internal/vec"
)

func exampleTuples() ([]vec.Sparse, int) {
	tuples, _, _ := fixture.RunningExample()
	return tuples, 2
}

func TestBuildPostingsSorted(t *testing.T) {
	tuples, m := exampleTuples()
	lists := BuildPostings(tuples)
	if len(lists) != m {
		t.Fatalf("%d lists, want %d", len(lists), m)
	}
	// L1 from Fig. 1: d1(0.8), d2(0.7), d3(0.1), d4(0.1) — tie broken by id.
	want := []storage.Posting{{ID: 0, Val: 0.8}, {ID: 1, Val: 0.7}, {ID: 2, Val: 0.1}, {ID: 3, Val: 0.1}}
	got := lists[0]
	if len(got) != len(want) {
		t.Fatalf("L1 = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("L1[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMemIndexBasics(t *testing.T) {
	tuples, m := exampleTuples()
	ix := NewMemIndex(tuples, m)
	if ix.NumTuples() != 4 || ix.Dim() != 2 {
		t.Fatalf("n=%d m=%d", ix.NumTuples(), ix.Dim())
	}
	if ix.ListLen(0) != 4 || ix.ListLen(1) != 4 {
		t.Fatalf("list lengths %d %d", ix.ListLen(0), ix.ListLen(1))
	}
	cur := ix.Cursor(1)
	p, ok := cur.Next()
	if !ok || p.ID != 2 || p.Val != 0.8 {
		t.Fatalf("L2 head = %v", p)
	}
	if ix.Stats().SeqPages() != 1 {
		t.Fatalf("seq pages = %d, want 1", ix.Stats().SeqPages())
	}
	d := ix.Tuple(0)
	if d.Get(0) != 0.8 || d.Get(1) != 0.32 {
		t.Fatalf("tuple 0 = %v", d)
	}
	if ix.Stats().RandReads() != 1 {
		t.Fatalf("rand reads = %d, want 1", ix.Stats().RandReads())
	}
}

// TestDiskIndexMatchesMemIndex: the two implementations must agree on
// every list and every tuple.
func TestDiskIndexMatchesMemIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cs := fixture.RandCase(rng, 300, 10, 4, 5)
	mem := NewMemIndex(cs.Tuples, cs.M)

	dir := t.TempDir()
	tp, lp := filepath.Join(dir, "tuples.dat"), filepath.Join(dir, "lists.dat")
	if err := SaveDataset(tp, lp, cs.Tuples, cs.M); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenDiskIndex(tp, lp, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	if disk.NumTuples() != mem.NumTuples() || disk.Dim() != mem.Dim() {
		t.Fatalf("disk n=%d m=%d, mem n=%d m=%d", disk.NumTuples(), disk.Dim(), mem.NumTuples(), mem.Dim())
	}
	for d := 0; d < cs.M; d++ {
		if disk.ListLen(d) != mem.ListLen(d) {
			t.Fatalf("dim %d: disk len %d, mem len %d", d, disk.ListLen(d), mem.ListLen(d))
		}
		dc, mc := disk.Cursor(d), mem.Cursor(d)
		for {
			dp, dok := dc.Next()
			mp, mok := mc.Next()
			if dok != mok {
				t.Fatalf("dim %d: cursor length mismatch", d)
			}
			if !dok {
				break
			}
			if dp != mp {
				t.Fatalf("dim %d: %v vs %v", d, dp, mp)
			}
		}
	}
	for id := 0; id < disk.NumTuples(); id++ {
		dt, mt := disk.Tuple(id), mem.Tuple(id)
		if len(dt) != len(mt) {
			t.Fatalf("tuple %d nnz mismatch", id)
		}
		for i := range mt {
			if dt[i] != mt[i] {
				t.Fatalf("tuple %d entry %d: %v vs %v", id, i, dt[i], mt[i])
			}
		}
	}
	// Both meters must have counted comparable logical work.
	if disk.Stats().RandReads() != mem.Stats().RandReads() {
		t.Fatalf("random reads: disk %d, mem %d", disk.Stats().RandReads(), mem.Stats().RandReads())
	}
	if disk.Stats().SeqPages() == 0 || mem.Stats().SeqPages() == 0 {
		t.Fatal("sequential pages not counted")
	}
}

func TestOpenDiskIndexErrors(t *testing.T) {
	dir := t.TempDir()
	tp, lp := filepath.Join(dir, "t.dat"), filepath.Join(dir, "l.dat")
	if _, err := OpenDiskIndex(tp, lp, 0); err == nil {
		t.Fatal("missing files accepted")
	}
	tuples, m := exampleTuples()
	if err := SaveDataset(tp, lp, tuples, m); err != nil {
		t.Fatal(err)
	}
	// Mismatched dimensionality between the two files must be rejected.
	if err := storage.WriteListFile(lp, BuildPostings(tuples), m+3); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskIndex(tp, lp, 0); err == nil {
		t.Fatal("dimensionality mismatch accepted")
	}
}

func TestMemCursorPageAccounting(t *testing.T) {
	// 700 postings in one list: ceil(700/341) = 3 pages.
	var tuples []vec.Sparse
	for i := 0; i < 700; i++ {
		tuples = append(tuples, vec.MustSparse(vec.Entry{Dim: 0, Val: float64(i+1) / 701}))
	}
	ix := NewMemIndex(tuples, 1)
	cur := ix.Cursor(0)
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
	}
	if got := ix.Stats().SeqPages(); got != 3 {
		t.Fatalf("seq pages = %d, want 3", got)
	}
}
