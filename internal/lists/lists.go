// Package lists provides the per-dimension inverted-list index of the
// paper's system model (§3): for each dimension j an inverted list Lj of
// 〈tuple, coordinate〉 entries sorted by descending coordinate, plus
// random access to full tuples through an external file. Two
// implementations share one interface: MemIndex keeps everything in
// memory while still metering logical I/O (the paper's CPU charts stand
// in for the memory-resident setting, §7.1), and DiskIndex reads the
// storage package's on-disk formats.
//
// # Mutability and overlay merge rules
//
// The write path (Mutable: Insert/Update/Delete) has two
// implementations. MemIndex mutates its postings in place, keeping each
// list in exactly the order BuildPostings would produce (descending
// value, ties by ascending id) via binary-searched splices. Overlay
// makes a read-only DiskIndex writable without touching its files: it
// layers (1) delta posting lists, merged into every cursor in the same
// descending-value order, (2) a tombstone set hiding base postings of
// changed or deleted ids, and (3) an id-stable tuple override table.
// The merge invariants: a base id is either served from the base files
// or tombstoned and re-inserted as a delta — never both; insert ids
// continue the base numbering and only advance on success (which is
// what makes WAL replay reproduce id assignment exactly); a deleted id
// stays allocated forever (its slot reads as an empty tuple).
// Materialize folds the merged view back into a plain tuple slice —
// the checkpoint compaction input — and DeltaStats measures the
// overlay's in-memory footprint incrementally.
//
// # Concurrency model
//
// Reads are safe for any number of concurrent queries; only the atomic
// I/O meter is written. Mutations are NOT internally synchronized —
// the engine serializes them against queries under its RWMutex (see
// internal/engine's lock ordering). Cursors are single-query state and
// are not safe for sharing — each query (or each forked per-dimension
// scan) opens or Clones its own. WithStats derives a view of the index
// whose accesses are charged to a separate meter; a concurrent server
// gives each query a view over a Child of the shared meter so
// per-query deltas stay exact while the global counters keep
// aggregating.
package lists

import (
	"fmt"
	"slices"

	"repro/internal/storage"
	"repro/internal/vec"
)

// Cursor provides sorted access to one inverted list, top (highest
// coordinate) downward.
type Cursor interface {
	// Peek returns the next posting without consuming it.
	Peek() (storage.Posting, bool)
	// Next consumes and returns the next posting.
	Next() (storage.Posting, bool)
	// Consumed reports how many postings have been consumed.
	Consumed() int
	// Clone returns an independent cursor at the same position, so a
	// forked scan can resume from here without disturbing the original.
	Clone() Cursor
}

// Index is the query-facing view of a dataset: sorted access per
// dimension and counted random access to tuples.
type Index interface {
	// NumTuples returns the dataset cardinality n.
	NumTuples() int
	// Dim returns the dimensionality m.
	Dim() int
	// ListLen returns the length of dimension dim's inverted list.
	ListLen(dim int) int
	// Cursor opens a fresh sorted-access cursor on dimension dim.
	Cursor(dim int) Cursor
	// Tuple fetches the full vector of tuple id (one random I/O).
	Tuple(id int) vec.Sparse
	// Stats exposes the I/O meter all accesses are charged to.
	Stats() *storage.IOStats
	// WithStats returns a view of the same index whose accesses are
	// charged to st instead. The underlying data is shared.
	WithStats(st *storage.IOStats) Index
}

// postingsPerPage is how many inverted-list entries fit in one I/O page.
const postingsPerPage = storage.PageSize / 12

// PostingList is one inverted list in columnar (struct-of-arrays) form:
// IDs[i] and Vals[i] are the i-th posting, sorted by descending value
// with ties broken by ascending id. Separating the two arrays keeps the
// value array dense for the sorted-access hot loop (8 B/entry streamed
// instead of 16 B interleaved).
type PostingList struct {
	IDs  []int32
	Vals []float64
}

// Len returns the number of postings.
func (pl PostingList) Len() int { return len(pl.IDs) }

// At materializes the i-th posting in row form.
func (pl PostingList) At(i int) storage.Posting {
	return storage.Posting{ID: int(pl.IDs[i]), Val: pl.Vals[i]}
}

// BuildPostings constructs the per-dimension inverted lists for tuples in
// row form (the on-disk format): every non-zero coordinate yields a
// posting; lists are sorted by descending value with ties broken by
// ascending tuple id (deterministic TA traces).
func BuildPostings(tuples []vec.Sparse) map[int][]storage.Posting {
	lists := make(map[int][]storage.Posting)
	for id, t := range tuples {
		for _, e := range t {
			lists[e.Dim] = append(lists[e.Dim], storage.Posting{ID: id, Val: e.Val})
		}
	}
	for d := range lists {
		slices.SortFunc(lists[d], comparePostings)
	}
	return lists
}

// comparePostings orders by descending value, ties by ascending id.
func comparePostings(a, b storage.Posting) int {
	switch {
	case a.Val > b.Val:
		return -1
	case a.Val < b.Val:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	default:
		return 0
	}
}

// BuildColumnar constructs the per-dimension inverted lists directly in
// the columnar layout MemIndex serves from.
func BuildColumnar(tuples []vec.Sparse) map[int]PostingList {
	rows := BuildPostings(tuples)
	out := make(map[int]PostingList, len(rows))
	for d, l := range rows {
		pl := PostingList{IDs: make([]int32, len(l)), Vals: make([]float64, len(l))}
		for i, p := range l {
			pl.IDs[i] = int32(p.ID)
			pl.Vals[i] = p.Val
		}
		out[d] = pl
	}
	return out
}

// MemIndex is an in-memory Index. Logical I/O is still metered: cursors
// charge one sequential page per postingsPerPage entries consumed, and
// Tuple charges one random read — so experiment I/O counts are identical
// to the disk-backed path.
type MemIndex struct {
	tuples []vec.Sparse
	lists  map[int]PostingList
	m      int
	stats  *storage.IOStats
	// dead marks tombstoned ids (see Mutable); nil until the first
	// Delete. Deleted tuples keep their slot but have no postings.
	dead map[int]bool
}

// NewMemIndex builds an in-memory index over tuples in [0,1]^m.
func NewMemIndex(tuples []vec.Sparse, m int) *MemIndex {
	return &MemIndex{
		tuples: tuples,
		lists:  BuildColumnar(tuples),
		m:      m,
		stats:  &storage.IOStats{},
	}
}

// NumTuples returns the dataset cardinality.
func (ix *MemIndex) NumTuples() int { return len(ix.tuples) }

// Dim returns the dimensionality m.
func (ix *MemIndex) Dim() int { return ix.m }

// ListLen returns the length of dim's inverted list.
func (ix *MemIndex) ListLen(dim int) int { return ix.lists[dim].Len() }

// Stats returns the I/O meter.
func (ix *MemIndex) Stats() *storage.IOStats { return ix.stats }

// WithStats returns a view over the same data charging st.
func (ix *MemIndex) WithStats(st *storage.IOStats) Index {
	cp := *ix
	cp.stats = st
	return &cp
}

// Cursor opens a sorted-access cursor on dim.
func (ix *MemIndex) Cursor(dim int) Cursor {
	pl := ix.lists[dim]
	return &memCursor{ids: pl.IDs, vals: pl.Vals, stats: ix.stats}
}

// Tuple fetches a tuple, charging one random read.
func (ix *MemIndex) Tuple(id int) vec.Sparse {
	t := ix.tuples[id]
	ix.stats.AddRandRead(4 + 12*len(t))
	return t
}

// Postings materializes the raw list of a dimension in row form; used by
// dataset statistics and tests, not the query path.
func (ix *MemIndex) Postings(dim int) []storage.Posting {
	pl := ix.lists[dim]
	out := make([]storage.Posting, pl.Len())
	for i := range out {
		out[i] = pl.At(i)
	}
	return out
}

type memCursor struct {
	ids   []int32
	vals  []float64
	stats *storage.IOStats
	pos   int
}

func (c *memCursor) Peek() (storage.Posting, bool) {
	if c.pos >= len(c.ids) {
		return storage.Posting{}, false
	}
	return storage.Posting{ID: int(c.ids[c.pos]), Val: c.vals[c.pos]}, true
}

func (c *memCursor) Next() (storage.Posting, bool) {
	p, ok := c.Peek()
	if !ok {
		return storage.Posting{}, false
	}
	if c.pos%postingsPerPage == 0 {
		c.stats.AddSeqPage(1)
	}
	c.pos++
	return p, true
}

func (c *memCursor) Consumed() int { return c.pos }

func (c *memCursor) Clone() Cursor {
	cp := *c
	return &cp
}

// DiskIndex is the disk-backed Index over the storage package's tuple and
// list files.
type DiskIndex struct {
	tf    *storage.TupleFile
	lf    *storage.ListFile
	stats *storage.IOStats
}

// OpenDiskIndex opens tuplePath and listPath with a shared I/O meter and
// buffer pool size (pages; 0 disables pooling).
func OpenDiskIndex(tuplePath, listPath string, poolPages int) (*DiskIndex, error) {
	stats := &storage.IOStats{}
	tf, err := storage.OpenTupleFile(tuplePath, stats, poolPages)
	if err != nil {
		return nil, fmt.Errorf("lists: open tuples: %w", err)
	}
	lf, err := storage.OpenListFile(listPath, stats, poolPages)
	if err != nil {
		tf.Close()
		return nil, fmt.Errorf("lists: open lists: %w", err)
	}
	if tf.Dim() != lf.Dim() {
		tf.Close()
		lf.Close()
		return nil, fmt.Errorf("lists: dimensionality mismatch: tuples m=%d lists m=%d", tf.Dim(), lf.Dim())
	}
	return &DiskIndex{tf: tf, lf: lf, stats: stats}, nil
}

// Close releases both underlying files.
func (ix *DiskIndex) Close() error {
	err1 := ix.tf.Close()
	err2 := ix.lf.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// NumTuples returns the dataset cardinality.
func (ix *DiskIndex) NumTuples() int { return ix.tf.NumTuples() }

// Dim returns the dimensionality m.
func (ix *DiskIndex) Dim() int { return ix.tf.Dim() }

// ListLen returns the length of dim's inverted list.
func (ix *DiskIndex) ListLen(dim int) int { return ix.lf.ListLen(dim) }

// Stats returns the I/O meter.
func (ix *DiskIndex) Stats() *storage.IOStats { return ix.stats }

// WithStats returns a view over the same files charging st. The buffer
// pool stays shared; only the metering target changes.
func (ix *DiskIndex) WithStats(st *storage.IOStats) Index {
	cp := *ix
	cp.stats = st
	return &cp
}

// Cursor opens a sorted-access cursor on dim.
func (ix *DiskIndex) Cursor(dim int) Cursor {
	return &diskCursor{c: ix.lf.CursorWith(dim, ix.stats)}
}

// Tuple fetches a tuple, charging one random read.
func (ix *DiskIndex) Tuple(id int) vec.Sparse {
	t, err := ix.tf.GetWith(id, ix.stats)
	if err != nil {
		panic(fmt.Sprintf("lists: tuple %d: %v", id, err))
	}
	return t
}

// diskCursor adapts storage.ListCursor to the Cursor interface (the
// Clone method cannot live in storage without an import cycle).
type diskCursor struct {
	c *storage.ListCursor
}

func (d *diskCursor) Peek() (storage.Posting, bool) { return d.c.Peek() }
func (d *diskCursor) Next() (storage.Posting, bool) { return d.c.Next() }
func (d *diskCursor) Consumed() int                 { return d.c.Consumed() }
func (d *diskCursor) Clone() Cursor                 { return &diskCursor{c: d.c.CloneCursor()} }

// SaveDataset writes tuples and their inverted lists to tuplePath and
// listPath in the storage formats.
func SaveDataset(tuplePath, listPath string, tuples []vec.Sparse, m int) error {
	if err := storage.WriteTupleFile(tuplePath, tuples, m); err != nil {
		return fmt.Errorf("lists: write tuples: %w", err)
	}
	if err := storage.WriteListFile(listPath, BuildPostings(tuples), m); err != nil {
		return fmt.Errorf("lists: write lists: %w", err)
	}
	return nil
}
