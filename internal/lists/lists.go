// Package lists provides the per-dimension inverted-list index of the
// paper's system model (§3): for each dimension j an inverted list Lj of
// 〈tuple, coordinate〉 entries sorted by descending coordinate, plus
// random access to full tuples through an external file. Two
// implementations share one interface: MemIndex keeps everything in
// memory while still metering logical I/O (the paper's CPU charts stand
// in for the memory-resident setting, §7.1), and DiskIndex reads the
// storage package's on-disk formats.
package lists

import (
	"fmt"
	"sort"

	"repro/internal/storage"
	"repro/internal/vec"
)

// Cursor provides sorted access to one inverted list, top (highest
// coordinate) downward.
type Cursor interface {
	// Peek returns the next posting without consuming it.
	Peek() (storage.Posting, bool)
	// Next consumes and returns the next posting.
	Next() (storage.Posting, bool)
	// Consumed reports how many postings have been consumed.
	Consumed() int
}

// Index is the query-facing view of a dataset: sorted access per
// dimension and counted random access to tuples.
type Index interface {
	// NumTuples returns the dataset cardinality n.
	NumTuples() int
	// Dim returns the dimensionality m.
	Dim() int
	// ListLen returns the length of dimension dim's inverted list.
	ListLen(dim int) int
	// Cursor opens a fresh sorted-access cursor on dimension dim.
	Cursor(dim int) Cursor
	// Tuple fetches the full vector of tuple id (one random I/O).
	Tuple(id int) vec.Sparse
	// Stats exposes the I/O meter all accesses are charged to.
	Stats() *storage.IOStats
}

// postingsPerPage is how many inverted-list entries fit in one I/O page.
const postingsPerPage = storage.PageSize / 12

// BuildPostings constructs the per-dimension inverted lists for tuples:
// every non-zero coordinate yields a posting; lists are sorted by
// descending value with ties broken by ascending tuple id (deterministic
// TA traces).
func BuildPostings(tuples []vec.Sparse) map[int][]storage.Posting {
	lists := make(map[int][]storage.Posting)
	for id, t := range tuples {
		for _, e := range t {
			lists[e.Dim] = append(lists[e.Dim], storage.Posting{ID: id, Val: e.Val})
		}
	}
	for d := range lists {
		l := lists[d]
		sort.Slice(l, func(i, j int) bool {
			if l[i].Val != l[j].Val {
				return l[i].Val > l[j].Val
			}
			return l[i].ID < l[j].ID
		})
	}
	return lists
}

// MemIndex is an in-memory Index. Logical I/O is still metered: cursors
// charge one sequential page per postingsPerPage entries consumed, and
// Tuple charges one random read — so experiment I/O counts are identical
// to the disk-backed path.
type MemIndex struct {
	tuples []vec.Sparse
	lists  map[int][]storage.Posting
	m      int
	stats  *storage.IOStats
}

// NewMemIndex builds an in-memory index over tuples in [0,1]^m.
func NewMemIndex(tuples []vec.Sparse, m int) *MemIndex {
	return &MemIndex{
		tuples: tuples,
		lists:  BuildPostings(tuples),
		m:      m,
		stats:  &storage.IOStats{},
	}
}

// NumTuples returns the dataset cardinality.
func (ix *MemIndex) NumTuples() int { return len(ix.tuples) }

// Dim returns the dimensionality m.
func (ix *MemIndex) Dim() int { return ix.m }

// ListLen returns the length of dim's inverted list.
func (ix *MemIndex) ListLen(dim int) int { return len(ix.lists[dim]) }

// Stats returns the I/O meter.
func (ix *MemIndex) Stats() *storage.IOStats { return ix.stats }

// Cursor opens a sorted-access cursor on dim.
func (ix *MemIndex) Cursor(dim int) Cursor {
	return &memCursor{list: ix.lists[dim], stats: ix.stats}
}

// Tuple fetches a tuple, charging one random read.
func (ix *MemIndex) Tuple(id int) vec.Sparse {
	t := ix.tuples[id]
	ix.stats.AddRandRead(4 + 12*len(t))
	return t
}

// Postings exposes the raw list of a dimension (read-only); used by
// dataset statistics and tests.
func (ix *MemIndex) Postings(dim int) []storage.Posting { return ix.lists[dim] }

type memCursor struct {
	list  []storage.Posting
	stats *storage.IOStats
	pos   int
}

func (c *memCursor) Peek() (storage.Posting, bool) {
	if c.pos >= len(c.list) {
		return storage.Posting{}, false
	}
	return c.list[c.pos], true
}

func (c *memCursor) Next() (storage.Posting, bool) {
	p, ok := c.Peek()
	if !ok {
		return storage.Posting{}, false
	}
	if c.pos%postingsPerPage == 0 {
		c.stats.AddSeqPage(1)
	}
	c.pos++
	return p, true
}

func (c *memCursor) Consumed() int { return c.pos }

// DiskIndex is the disk-backed Index over the storage package's tuple and
// list files.
type DiskIndex struct {
	tf    *storage.TupleFile
	lf    *storage.ListFile
	stats *storage.IOStats
}

// OpenDiskIndex opens tuplePath and listPath with a shared I/O meter and
// buffer pool size (pages; 0 disables pooling).
func OpenDiskIndex(tuplePath, listPath string, poolPages int) (*DiskIndex, error) {
	stats := &storage.IOStats{}
	tf, err := storage.OpenTupleFile(tuplePath, stats, poolPages)
	if err != nil {
		return nil, fmt.Errorf("lists: open tuples: %w", err)
	}
	lf, err := storage.OpenListFile(listPath, stats, poolPages)
	if err != nil {
		tf.Close()
		return nil, fmt.Errorf("lists: open lists: %w", err)
	}
	if tf.Dim() != lf.Dim() {
		tf.Close()
		lf.Close()
		return nil, fmt.Errorf("lists: dimensionality mismatch: tuples m=%d lists m=%d", tf.Dim(), lf.Dim())
	}
	return &DiskIndex{tf: tf, lf: lf, stats: stats}, nil
}

// Close releases both underlying files.
func (ix *DiskIndex) Close() error {
	err1 := ix.tf.Close()
	err2 := ix.lf.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// NumTuples returns the dataset cardinality.
func (ix *DiskIndex) NumTuples() int { return ix.tf.NumTuples() }

// Dim returns the dimensionality m.
func (ix *DiskIndex) Dim() int { return ix.tf.Dim() }

// ListLen returns the length of dim's inverted list.
func (ix *DiskIndex) ListLen(dim int) int { return ix.lf.ListLen(dim) }

// Stats returns the I/O meter.
func (ix *DiskIndex) Stats() *storage.IOStats { return ix.stats }

// Cursor opens a sorted-access cursor on dim.
func (ix *DiskIndex) Cursor(dim int) Cursor { return ix.lf.Cursor(dim) }

// Tuple fetches a tuple, charging one random read.
func (ix *DiskIndex) Tuple(id int) vec.Sparse {
	t, err := ix.tf.Get(id)
	if err != nil {
		panic(fmt.Sprintf("lists: tuple %d: %v", id, err))
	}
	return t
}

// SaveDataset writes tuples and their inverted lists to tuplePath and
// listPath in the storage formats.
func SaveDataset(tuplePath, listPath string, tuples []vec.Sparse, m int) error {
	if err := storage.WriteTupleFile(tuplePath, tuples, m); err != nil {
		return fmt.Errorf("lists: write tuples: %w", err)
	}
	if err := storage.WriteListFile(listPath, BuildPostings(tuples), m); err != nil {
		return fmt.Errorf("lists: write lists: %w", err)
	}
	return nil
}
