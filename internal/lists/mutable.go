// Mutable indexes: the write path of the system. The paper treats the
// dataset as static — immutable regions certify result validity against
// *weight* change — but the orthogonal axis, *data* change, is what the
// engine's region-certified cache invalidation is built on, and it needs
// an index that can apply inserts, updates and deletes while keeping the
// inverted lists sorted exactly as BuildPostings would produce them
// (descending value, ties by ascending id), so a mutated index and a
// freshly built one are bit-for-bit interchangeable to the query path.
//
// Concurrency model: mutations are NOT internally synchronized — they
// must be serialized externally against each other and against any
// in-flight readers (cursors, Tuple fetches). The engine provides that
// discipline with a reader-writer lock: queries hold the read side for
// their whole execution, Apply holds the write side. Once a mutation
// batch completes, any newly opened cursor or view observes the updated
// lists.
package lists

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/vec"
)

// Mutable is an Index that accepts live data changes. Tuple ids are
// stable: Insert assigns the next id, Delete tombstones its slot (the id
// is never reused and NumTuples does not shrink), Update replaces the
// tuple in place. Update and Delete return the previous version of the
// tuple — the raw material of the engine's cache-invalidation
// certificate. MemIndex serves previous versions from memory for free;
// the disk overlay charges the one base read it must perform.
//
// MemIndex mutations write through the tuple slice handed to
// NewMemIndex (slots are reassigned in place). A caller that keeps
// using that slice independently should pass a copy.
type Mutable interface {
	Index
	// Insert adds a new tuple and returns its assigned id.
	Insert(t vec.Sparse) (int, error)
	// Update replaces tuple id and returns the previous version.
	Update(id int, t vec.Sparse) (vec.Sparse, error)
	// Delete removes tuple id (tombstoning its slot) and returns the
	// deleted version.
	Delete(id int) (vec.Sparse, error)
}

// validateTuple checks a mutation payload against the index geometry.
// Empty tuples are rejected: an all-zero vector can never appear in any
// inverted list or result, and empty records on disk are how checkpoint
// compaction persists TOMBSTONES — allowing one as a payload would make
// a live tuple indistinguishable from a deleted id after compaction.
func validateTuple(t vec.Sparse, m int) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if len(t) == 0 {
		return fmt.Errorf("lists: empty tuple (delete the id instead)")
	}
	if d := t.MaxDim(); d >= m {
		return fmt.Errorf("lists: tuple dimension %d outside dataset [0,%d)", d, m)
	}
	return nil
}

// insertPosting places (id, val) at its sorted position: descending
// value, ties by ascending id — the BuildPostings order.
func insertPosting(pl PostingList, id int32, val float64) PostingList {
	i := sort.Search(pl.Len(), func(i int) bool {
		if pl.Vals[i] != val {
			return pl.Vals[i] < val
		}
		return pl.IDs[i] > id
	})
	pl.IDs = slices.Insert(pl.IDs, i, id)
	pl.Vals = slices.Insert(pl.Vals, i, val)
	return pl
}

// removePosting deletes the (id, val) posting, located by binary search
// on the (val desc, id asc) order.
func removePosting(pl PostingList, id int32, val float64) (PostingList, bool) {
	i := sort.Search(pl.Len(), func(i int) bool {
		if pl.Vals[i] != val {
			return pl.Vals[i] < val
		}
		return pl.IDs[i] >= id
	})
	if i >= pl.Len() || pl.IDs[i] != id || pl.Vals[i] != val {
		return pl, false
	}
	pl.IDs = slices.Delete(pl.IDs, i, i+1)
	pl.Vals = slices.Delete(pl.Vals, i, i+1)
	return pl, true
}

// addPostings files every non-zero coordinate of tuple id.
func (ix *MemIndex) addPostings(id int, t vec.Sparse) {
	for _, e := range t {
		ix.lists[e.Dim] = insertPosting(ix.lists[e.Dim], int32(id), e.Val)
	}
}

// dropPostings unfiles every non-zero coordinate of tuple id.
func (ix *MemIndex) dropPostings(id int, t vec.Sparse) {
	for _, e := range t {
		pl, ok := removePosting(ix.lists[e.Dim], int32(id), e.Val)
		if !ok {
			panic(fmt.Sprintf("lists: posting (%d, %v) missing from dim %d", id, e.Val, e.Dim))
		}
		ix.lists[e.Dim] = pl
	}
}

// Insert adds a new tuple, returning its id. See Mutable for the
// synchronization contract.
func (ix *MemIndex) Insert(t vec.Sparse) (int, error) {
	if err := validateTuple(t, ix.m); err != nil {
		return -1, err
	}
	id := len(ix.tuples)
	ix.tuples = append(ix.tuples, t.Clone())
	ix.addPostings(id, t)
	return id, nil
}

// Update replaces tuple id and returns the previous version.
func (ix *MemIndex) Update(id int, t vec.Sparse) (vec.Sparse, error) {
	if id < 0 || id >= len(ix.tuples) {
		return nil, fmt.Errorf("lists: tuple %d out of range [0,%d)", id, len(ix.tuples))
	}
	if ix.dead[id] {
		return nil, fmt.Errorf("lists: tuple %d is deleted", id)
	}
	if err := validateTuple(t, ix.m); err != nil {
		return nil, err
	}
	old := ix.tuples[id]
	ix.dropPostings(id, old)
	ix.tuples[id] = t.Clone()
	ix.addPostings(id, t)
	return old, nil
}

// Delete tombstones tuple id and returns the deleted version. The id
// keeps its slot (NumTuples is unchanged); it simply disappears from
// every inverted list, so no query can encounter it again.
func (ix *MemIndex) Delete(id int) (vec.Sparse, error) {
	if id < 0 || id >= len(ix.tuples) {
		return nil, fmt.Errorf("lists: tuple %d out of range [0,%d)", id, len(ix.tuples))
	}
	if ix.dead[id] {
		return nil, fmt.Errorf("lists: tuple %d is already deleted", id)
	}
	old := ix.tuples[id]
	ix.dropPostings(id, old)
	ix.tuples[id] = nil
	if ix.dead == nil {
		ix.dead = make(map[int]bool)
	}
	ix.dead[id] = true
	return old, nil
}
