package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockSafe machine-checks the engine's written lock-ordering contract
// (engine godoc "Lock ordering"; docs/architecture.md "Concurrency and
// lock ordering"): the engine-wide mu is the outermost lock, the
// expensive checkpoint rewrite and other long-blocking syscalls run
// OFF it, the checkpoint mutex is taken before mu (never inside), and
// nothing reached from below — a storage/lists/wal callback — may
// acquire mu. Concretely, inside a critical section of Engine.mu
// (lexical Lock/RLock…Unlock spans, plus the bodies of functions whose
// name ends in "Locked", the package's caller-holds-mu convention):
//
//   - no blocking rewrite/sync syscalls: lists.SaveDataset,
//     wal.SyncFile/SyncDir, storage.VerifyChecksum, (*os.File)
//     Sync/Write*, os.WriteFile/Rename, (*wal.Writer).Sync,
//     (net.Conn).Write, time.Sleep. (The WAL append itself is
//     deliberately under the lock — commit order is the log order —
//     and the cheap manifest publish steps are too; neither is in the
//     deny set.)
//   - no re-acquisition of Engine.mu (self-deadlock) and no call to an
//     Engine method that itself acquires mu (the analyzer derives that
//     set from the package's own bodies);
//   - no acquisition of the checkpoint mutex (ckptMu is ordered BEFORE
//     mu; taking it under mu inverts the documented order);
//
// and — in any context — a function literal passed into a
// storage/lists/wal API must not acquire Engine.mu: callbacks run
// below the engine layer, where taking the outermost lock inverts the
// order (the PR 3 class of deadlock).
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "no blocking syscalls, lock re-entry or lock-order inversion under the engine write lock",
	Run:  runLockSafe,
}

// lockDenyFuncs are package-level functions that block on disk or the
// clock: pkg path (repo-suffix matched) → function → why.
var lockDenyFuncs = map[string]map[string]string{
	"internal/lists":   {"SaveDataset": "the checkpoint rewrite belongs in the unlocked phase (see durable.go checkpoint())"},
	"internal/wal":     {"SyncFile": "fsync blocks every queued query", "SyncDir": "fsync blocks every queued query"},
	"internal/storage": {"VerifyChecksum": "a full-file scan blocks every queued query"},
	"os":               {"WriteFile": "file writes block every queued query", "Rename": "directory syscalls block every queued query"},
	"time":             {"Sleep": "sleeping under the engine lock stalls all queries"},
}

// lockDenyMethods are methods that block: pkg path → type → method →
// why.
var lockDenyMethods = map[string]map[string]map[string]string{
	"os": {"File": {
		"Sync":        "fsync blocks every queued query",
		"Write":       "file writes block every queued query",
		"WriteAt":     "file writes block every queued query",
		"WriteString": "file writes block every queued query",
	}},
	"internal/wal": {"Writer": {
		"Sync": "an explicit WAL fsync belongs outside the lock (Append's own sync policy is the documented exception)",
	}},
	"net": {"Conn": {
		"Write": "network sends under the engine lock stall all queries on a slow peer",
	}},
}

// belowEnginePkgs are the layers below the engine: a callback passed
// into them must never take the engine lock.
var belowEnginePkgs = []string{"internal/storage", "internal/lists", "internal/wal"}

// muKind classifies an Engine.mu method call.
type muKind int

const (
	muNone muKind = iota
	muLock
	muRLock
	muUnlock
	muRUnlock
)

func runLockSafe(pass *Pass) error {
	if !pathIs(pass.Pkg, "internal/engine") {
		return nil
	}
	ls := &lockSafe{pass: pass, lockTakers: map[string]bool{}}
	// Pre-pass: Engine methods that acquire mu themselves. Calling one
	// while holding mu deadlocks (Lock) or risks it (RLock behind a
	// queued writer).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil && ls.isEngineMethod(fn) {
				if ls.acquiresMu(fn.Body) {
					ls.lockTakers[fn.Name.Name] = true
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				held := strings.HasSuffix(fn.Name.Name, "Locked")
				ls.walkStmts(fn.Body.List, held)
				ls.checkCallbacks(fn.Body)
			}
		}
	}
	return nil
}

type lockSafe struct {
	pass       *Pass
	lockTakers map[string]bool
}

// isEngineMethod reports whether fn's receiver is (a pointer to) the
// package's Engine type.
func (ls *lockSafe) isEngineMethod(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := ls.pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
	return ls.isEngineType(t)
}

func (ls *lockSafe) isEngineType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Engine" && named.Obj().Pkg() == ls.pass.Pkg
}

// engineMuCall classifies expr as an Engine.mu lock-method call.
func (ls *lockSafe) engineMuCall(call *ast.CallExpr) muKind {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return muNone
	}
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok || muSel.Sel.Name != "mu" {
		return muNone
	}
	if !ls.isEngineType(ls.pass.TypesInfo.TypeOf(muSel.X)) {
		return muNone
	}
	switch sel.Sel.Name {
	case "Lock":
		return muLock
	case "RLock":
		return muRLock
	case "Unlock":
		return muUnlock
	case "RUnlock":
		return muRUnlock
	}
	return muNone
}

// acquiresMu reports whether the body lexically acquires Engine.mu
// (function literals excluded: a closure acquires when called, not
// when defined).
func (ls *lockSafe) acquiresMu(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if k := ls.engineMuCall(call); k == muLock || k == muRLock {
				found = true
			}
		}
		return !found
	})
	return found
}

// walkStmts scans a statement list tracking whether Engine.mu is held.
// Branch bodies get a value copy of the state: a branch that unlocks
// and returns does not clear the fall-through path's hold.
func (ls *lockSafe) walkStmts(stmts []ast.Stmt, held bool) {
	for _, stmt := range stmts {
		held = ls.walkStmt(stmt, held)
	}
}

func (ls *lockSafe) walkStmt(stmt ast.Stmt, held bool) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch ls.engineMuCall(call) {
			case muLock, muRLock:
				if held {
					ls.pass.Reportf(call.Pos(), "Engine.mu acquired while already held: self-deadlock (Lock) or writer-starvation deadlock (RLock behind a queued writer)")
				}
				return true
			case muUnlock, muRUnlock:
				return false
			}
		}
		ls.scanExpr(s.X, held)
	case *ast.DeferStmt:
		switch ls.engineMuCall(s.Call) {
		case muUnlock, muRUnlock:
			// Held until return; deferred calls scheduled AFTER this
			// one run before the unlock, so scanning continues with
			// held state unchanged.
			return held
		}
		ls.scanExpr(s.Call, held)
	case *ast.BlockStmt:
		ls.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			ls.walkStmt(s.Init, held)
		}
		ls.scanExpr(s.Cond, held)
		ls.walkStmts(s.Body.List, held)
		if s.Else != nil {
			ls.walkStmt(s.Else, held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ls.walkStmt(s.Init, held)
		}
		ls.scanExpr(s.Cond, held)
		if s.Post != nil {
			ls.walkStmt(s.Post, held)
		}
		ls.walkStmts(s.Body.List, held)
	case *ast.RangeStmt:
		ls.scanExpr(s.X, held)
		ls.walkStmts(s.Body.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			ls.scanExpr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				ls.walkStmts(clause.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ls.walkStmt(s.Init, held)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				ls.walkStmts(clause.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				ls.walkStmts(clause.Body, held)
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			ls.scanExpr(rhs, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ls.scanExpr(r, held)
		}
	case *ast.GoStmt:
		// A goroutine launched under the lock runs concurrently, not
		// under it; its body is covered by the callback rule only.
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt,
		*ast.LabeledStmt, *ast.SendStmt:
		if l, ok := stmt.(*ast.LabeledStmt); ok {
			return ls.walkStmt(l.Stmt, held)
		}
	}
	return held
}

// scanExpr reports deny-set calls, mu re-entry and ckptMu inversion
// inside an expression evaluated while mu is held. Function literals
// are skipped: they run when called, not where written.
func (ls *lockSafe) scanExpr(e ast.Expr, held bool) {
	if !held || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch ls.engineMuCall(call) {
		case muLock, muRLock:
			ls.pass.Reportf(call.Pos(), "Engine.mu acquired while already held: self-deadlock (Lock) or writer-starvation deadlock (RLock behind a queued writer)")
			return true
		case muUnlock, muRUnlock:
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "ckptMu" &&
				(sel.Sel.Name == "Lock" || sel.Sel.Name == "Unlock") {
				if sel.Sel.Name == "Lock" {
					ls.pass.Reportf(call.Pos(), "ckptMu acquired under Engine.mu: the documented order is ckptMu BEFORE mu (checkpoints span lock regions)")
				}
				return true
			}
		}
		ls.checkDenyCall(call)
		return true
	})
}

// checkDenyCall reports a call that must not run under the lock.
func (ls *lockSafe) checkDenyCall(call *ast.CallExpr) {
	obj := calleeObject(ls.pass, call)
	if obj == nil {
		return
	}
	// Engine methods that take mu themselves.
	if ls.lockTakers[obj.Name()] {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && ls.isEngineType(ls.pass.TypesInfo.TypeOf(sel.X)) {
			ls.pass.Reportf(call.Pos(), "Engine.%s acquires Engine.mu itself; calling it with mu held deadlocks", obj.Name())
			return
		}
	}
	if obj.Pkg() == nil {
		return
	}
	// Package-level deny functions.
	for pkgPath, funcs := range lockDenyFuncs {
		if !pathIs(obj.Pkg(), pkgPath) {
			continue
		}
		if why, ok := funcs[obj.Name()]; ok {
			ls.pass.Reportf(call.Pos(), "%s.%s under the engine lock: %s", obj.Pkg().Name(), obj.Name(), why)
			return
		}
	}
	// Deny methods, matched by receiver type.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := ls.pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return
	}
	rt := selection.Recv()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return
	}
	for pkgPath, typeMap := range lockDenyMethods {
		if !pathIs(named.Obj().Pkg(), pkgPath) {
			continue
		}
		if why, ok := typeMap[named.Obj().Name()][sel.Sel.Name]; ok {
			ls.pass.Reportf(call.Pos(), "(%s.%s).%s under the engine lock: %s", named.Obj().Pkg().Name(), named.Obj().Name(), sel.Sel.Name, why)
			return
		}
	}
}

// checkCallbacks flags function literals passed into the storage/
// lists/wal layer that acquire Engine.mu: code running below the
// engine must not take the outermost lock (inverted order).
func (ls *lockSafe) checkCallbacks(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(ls.pass, call)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		below := false
		for _, p := range belowEnginePkgs {
			if pathIs(obj.Pkg(), p) {
				below = true
				break
			}
		}
		if !below {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := ast.Unparen(arg).(*ast.FuncLit)
			if !ok {
				continue
			}
			if ls.acquiresMuInLit(lit) {
				ls.pass.Reportf(lit.Pos(), "callback passed into %s acquires Engine.mu: callbacks run below the engine layer, and mu is the outermost lock (inverted lock order)", obj.Pkg().Name())
			}
		}
		return true
	})
}

// acquiresMuInLit reports whether the literal's body acquires
// Engine.mu (nested literals included — they still run below).
func (ls *lockSafe) acquiresMuInLit(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if k := ls.engineMuCall(call); k == muLock || k == muRLock {
				found = true
			}
		}
		return !found
	})
	return found
}
