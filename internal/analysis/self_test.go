package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestRepoClean is the meta-check behind `make lint`: the full
// registry over the whole repo must come back with zero unsuppressed
// findings. A new true positive anywhere in the tree fails this test
// (and CI) until it is fixed or carries a reasoned //lint:allow.
func TestRepoClean(t *testing.T) {
	loader := analysis.NewLoader("../..")
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	// Sanity: the loader saw the real tree, not an empty pattern match.
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; expected the full repo", len(pkgs))
	}
	diags, err := analysis.RunAnalyzers(analysis.Registry, pkgs)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			continue
		}
		t.Errorf("unsuppressed finding: %s", d)
	}
	// The repo carries a small, deliberate set of allowances (core
	// stopwatch, nra map collect); if they vanish wholesale something
	// is wrong with suppression matching itself.
	if suppressed == 0 {
		t.Error("expected at least one suppressed finding (the documented //lint:allow sites)")
	}
}
