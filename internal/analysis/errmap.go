package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrMap enforces the sentinel-error discipline the transport layer's
// typed-error→HTTP-status mapping rests on (engine godoc,
// docs/operations.md): ErrInvalid→400, ErrFenced/ErrImmutable→409,
// ErrQuorum→503. Every layer wraps sentinels with fmt.Errorf("...: %w"),
// so:
//
//   - comparing an error against a package-level Err* sentinel (or a
//     syscall.Errno constant) with == or != silently stops matching the
//     moment anyone adds context; errors.Is is required. Switch
//     statements over an error value are the same bug in other clothes.
//   - in internal/server, ad-hoc status writing (net/http's http.Error,
//     or a literal 500 WriteHeader) outside the central
//     httpError/engineError/writeJSON helpers bypasses the mapping
//     table entirely, which is exactly how PR 3's panic-through-
//     httptest class of bug survives.
var ErrMap = &Analyzer{
	Name: "errmap",
	Doc:  "require errors.Is for wrapped sentinels and route server statuses through the central error mapping",
	Run:  runErrMap,
}

// serverErrorHelpers are internal/server's designated status writers;
// status plumbing inside them is the mapping, not a bypass of it.
var serverErrorHelpers = map[string]bool{"httpError": true, "engineError": true, "writeJSON": true}

func runErrMap(pass *Pass) error {
	inServer := pathIs(pass.Pkg, "internal/server")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok {
				errMapFunc(pass, fn, inServer)
			}
		}
	}
	return nil
}

func errMapFunc(pass *Pass, fn *ast.FuncDecl, inServer bool) {
	if fn.Body == nil {
		return
	}
	inHelper := serverErrorHelpers[fn.Name.Name]
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			checkSentinelCompare(pass, n.Pos(), n.X, n.Y)
			checkSentinelCompare(pass, n.Pos(), n.Y, n.X)
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return true
			}
			if t := pass.TypesInfo.TypeOf(n.Tag); t == nil || !isErrorType(t) {
				return true
			}
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if name, ok := sentinelErrorVar(pass, e); ok {
						pass.Reportf(e.Pos(), "switch over an error value matches %s by identity; wrapped sentinels require errors.Is", name)
					}
				}
			}
		case *ast.CallExpr:
			if !inServer {
				return true
			}
			if obj := calleeObject(pass, n); obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "net/http" && obj.Name() == "Error" {
				pass.Reportf(n.Pos(), "net/http.Error bypasses the JSON error body and the typed-error→status mapping; use httpError or engineError")
				return true
			}
			if inHelper {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "WriteHeader" && len(n.Args) == 1 {
				if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok && tv.Value != nil {
					if code, ok := constant.Int64Val(tv.Value); ok && code >= 500 {
						pass.Reportf(n.Pos(), "literal %d status outside the error-mapping helpers; engine failures must flow through engineError so sentinel types keep their documented statuses", code)
					}
				}
			}
		}
		return true
	})
}

// checkSentinelCompare reports x ==/!= y when x is a sentinel error and
// y is not the nil literal. An Errno constant is only a sentinel when
// the other side is interface-typed (two raw Errno values compare
// fine); an Err* variable always is.
func checkSentinelCompare(pass *Pass, pos token.Pos, x, y ast.Expr) {
	name, ok := sentinelErrorVar(pass, x)
	if !ok {
		return
	}
	if tv, ok := pass.TypesInfo.Types[y]; ok && tv.IsNil() {
		return
	}
	if strings.HasPrefix(name, "syscall.") {
		if t := pass.TypesInfo.TypeOf(y); t == nil || !isErrorType(t) {
			return
		}
	}
	pass.Reportf(pos, "comparison with sentinel %s by identity; every layer wraps sentinels (%%w), so use errors.Is", name)
}

// sentinelErrorVar reports whether e names a sentinel: a package-level
// error variable named Err*, or a syscall.Errno constant (EWOULDBLOCK
// and friends — wrappable the same way).
func sentinelErrorVar(pass *Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch obj := obj.(type) {
	case *types.Var:
		if obj.Parent() == obj.Pkg().Scope() && strings.HasPrefix(obj.Name(), "Err") && isErrorType(obj.Type()) {
			return obj.Name(), true
		}
	case *types.Const:
		if named, ok := obj.Type().(*types.Named); ok {
			if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "syscall" && named.Obj().Name() == "Errno" {
				return "syscall." + obj.Name(), true
			}
		}
	}
	return "", false
}

// isErrorType reports whether t is the error interface.
func isErrorType(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
}

// calleeObject resolves a call's static callee, if any.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
