// The package loader: a stand-in for golang.org/x/tools/go/packages
// built from what the standard toolchain already provides. `go list
// -deps -json` yields the dependency-ordered package graph (build-tag
// and platform filtering included), and each package is then parsed
// with go/parser and type-checked from source with go/types. The
// standard library type-checks from GOROOT source the same way, so the
// loader needs no export data, no network and no module downloads.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	GoFiles    []string // absolute paths, parallel to Files
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// sharedFset is the process-wide file set: standard-library packages
// are type-checked once and shared between loaders (they are identical
// under every loader configuration we use), which requires their
// object positions to stay resolvable for the life of the process.
var sharedFset = token.NewFileSet()

// stdCache shares type-checked standard-library packages between
// loaders. Analyzer fixture tests each build their own Loader; without
// sharing, every test would re-check net/http's whole dependency cone.
var (
	stdMu    sync.Mutex
	stdCache = map[string]*Package{}
)

// Loader loads and type-checks packages.
type Loader struct {
	// Dir is the module root `go list` runs in.
	Dir string
	// Overlay maps import paths to source directories that take
	// precedence over `go list` resolution. The analysistest harness
	// points it at testdata/src so fixtures can stand in for real
	// packages (including their dependencies' stubs).
	Overlay map[string]string

	fset *token.FileSet
	pkgs map[string]*Package
}

// NewLoader returns a loader rooted at the module directory.
func NewLoader(dir string) *Loader {
	return &Loader{Dir: dir, fset: sharedFset, pkgs: map[string]*Package{}}
}

// listedPackage is the slice of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// goList runs `go list -deps -json` over the patterns and decodes the
// stream. CGO is disabled so every listed file is pure Go and the
// whole graph can be type-checked from source.
func (l *Loader) goList(patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Name,Dir,Standard,DepOnly,GoFiles,Imports,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load lists the patterns, type-checks the full dependency graph and
// returns the root packages (the ones the patterns named) in a stable
// order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var roots []*Package
	// -deps guarantees dependency order: every package's imports appear
	// before it, so a straight pass type-checks cleanly.
	for _, lp := range listed {
		pkg, err := l.ensureListed(lp)
		if err != nil {
			return nil, err
		}
		if !lp.DepOnly && pkg != nil {
			roots = append(roots, pkg)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	return roots, nil
}

// LoadOverlay type-checks one overlay package (a fixture) by import
// path. The path must be present in l.Overlay.
func (l *Loader) LoadOverlay(importPath string) (*Package, error) {
	dir, ok := l.Overlay[importPath]
	if !ok {
		return nil, fmt.Errorf("analysis: %q not in overlay", importPath)
	}
	return l.checkOverlayDir(importPath, dir)
}

// ensureListed type-checks one `go list`ed package (or returns the
// cached result).
func (l *Loader) ensureListed(lp *listedPackage) (*Package, error) {
	if lp.ImportPath == "unsafe" {
		return nil, nil // mapped to types.Unsafe by the importer
	}
	if p, ok := l.pkgs[lp.ImportPath]; ok {
		return p, nil
	}
	if lp.Standard {
		stdMu.Lock()
		p, ok := stdCache[lp.ImportPath]
		stdMu.Unlock()
		if ok {
			l.pkgs[lp.ImportPath] = p
			return p, nil
		}
	}
	files := make([]string, len(lp.GoFiles))
	for i, f := range lp.GoFiles {
		files[i] = filepath.Join(lp.Dir, f)
	}
	p, err := l.check(lp.ImportPath, lp.Dir, lp.Standard, files)
	if err != nil {
		return nil, err
	}
	if lp.Standard {
		stdMu.Lock()
		stdCache[lp.ImportPath] = p
		stdMu.Unlock()
	}
	return p, nil
}

// check parses and type-checks one package from its file list.
func (l *Loader) check(importPath, dir string, standard bool, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	var typeErrs []error
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		Sizes:       sizes,
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-check %s: %v", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %v", importPath, err)
	}
	p := &Package{
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Dir:        dir,
		Standard:   standard,
		GoFiles:    filenames,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// checkOverlayDir loads an overlay package from a directory: every
// non-test .go file whose build constraint holds under the default
// (custom-tag-free) environment.
func (l *Loader) checkOverlayDir(importPath, dir string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: overlay %s: %v", importPath, err)
	}
	var filenames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		ok, err := fileIncluded(path)
		if err != nil {
			return nil, err
		}
		if ok {
			filenames = append(filenames, path)
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("analysis: overlay %s: no buildable files in %s", importPath, dir)
	}
	sort.Strings(filenames)
	return l.check(importPath, dir, false, filenames)
}

// fileIncluded evaluates a file's //go:build constraint under the
// default environment (host GOOS/GOARCH, no custom tags). Fixture
// variant files tagged with custom build tags are excluded, exactly as
// `go build` would exclude them.
func fileIncluded(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	// Build constraints must precede the package clause; 4 KiB of
	// header is more than the gofmt'd layout ever needs.
	head := make([]byte, 4096)
	n, _ := io.ReadFull(f, head)
	for _, line := range strings.Split(string(head[:n]), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			break
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return false, fmt.Errorf("analysis: %s: bad build constraint: %v", path, err)
		}
		return expr.Eval(defaultTag), nil
	}
	return true, nil
}

// defaultTag is the build-tag environment of the host platform with
// every custom tag off.
func defaultTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "unix":
		return true
	}
	// Release tags: go1.1 through the toolchain's own version all hold.
	if v, ok := strings.CutPrefix(tag, "go1."); ok {
		var minor int
		if _, err := fmt.Sscanf(v, "%d", &minor); err == nil {
			return minor <= goMinorVersion()
		}
	}
	return false
}

// goMinorVersion parses the running toolchain's minor version.
func goMinorVersion() int {
	v := runtime.Version() // "go1.24.0"
	var minor int
	if _, err := fmt.Sscanf(v, "go1.%d", &minor); err == nil {
		return minor
	}
	return 99
}

// loaderImporter resolves imports during type-checking: overlay first
// (fixtures stub their dependencies), then already-loaded packages,
// then a lazy `go list` for anything new (a fixture importing a
// standard package whose graph the initial load did not cover).
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.Overlay[path]; ok {
		p, err := l.checkOverlayDir(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	// Standard-library vendoring: source inside GOROOT imports
	// "golang.org/x/..." but `go list` names the package
	// "vendor/golang.org/x/...". The vendored dependency is always
	// listed (in dependency order) before its importer, so it is
	// already loaded.
	if p, ok := l.pkgs["vendor/"+path]; ok {
		return p.Types, nil
	}
	listed, err := l.goList(path)
	if err != nil {
		return nil, err
	}
	var want *Package
	for _, lp := range listed {
		p, err := l.ensureListed(lp)
		if err != nil {
			return nil, err
		}
		if lp.ImportPath == path {
			want = p
		}
	}
	if want == nil {
		return nil, fmt.Errorf("analysis: import %q not resolved", path)
	}
	return want.Types, nil
}
