package analysis

// Registry is the full analyzer suite, in the order irlint runs and
// reports them. cmd/docscheck cross-checks this list against
// docs/static-analysis.md: an analyzer documented but not registered
// (or vice versa) fails CI.
var Registry = []*Analyzer{
	LockSafe,
	Metered,
	ErrMap,
	TagParity,
	DetCore,
	ObsReg,
}

// ByName returns the registered analyzer with the given name, nil when
// absent.
func ByName(name string) *Analyzer {
	for _, a := range Registry {
		if a.Name == name {
			return a
		}
	}
	return nil
}
