// Package analysistest drives an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under a testdata source tree (testdata/src by
// convention); every directory containing .go files becomes an overlay
// package whose import path is its path relative to the tree root, so
// a fixture at testdata/src/locksafe/internal/engine is analyzed
// exactly like the real internal/engine (the analyzers match package
// paths by suffix). Expectations are comments on the flagged line:
//
//	tf.Get(id) // want `charges the file-wide meter`
//	tf.Get(id) // want:suppressed `charges the file-wide meter`
//
// Each backtick-quoted fragment is a regexp that one diagnostic on
// that line must match; want:suppressed expects the finding to have
// been silenced by a //lint:allow comment. A diagnostic with no
// matching expectation, or an expectation with no diagnostic, fails
// the test. Expectations are collected textually from every non-test
// .go file in the fixture directories — including files the current
// build tags exclude, which tagparity still reports into.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var (
	wantRe = regexp.MustCompile("//\\s*want(:suppressed)?((?:\\s+`[^`]*`)+)")
	patRe  = regexp.MustCompile("`([^`]*)`")
)

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	file       string
	line       int
	re         *regexp.Regexp
	suppressed bool
	used       bool
}

// Run loads the fixture packages named by importPaths from the
// testdata tree, applies the analyzer, and reports every mismatch
// between its diagnostics and the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	loader := analysis.NewLoader(testdata)
	loader.Overlay = overlayOf(t, testdata)
	var pkgs []*analysis.Package
	for _, ip := range importPaths {
		pkg, err := loader.LoadOverlay(ip)
		if err != nil {
			t.Fatalf("load fixture %s: %v", ip, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	exps := collectWants(t, pkgs)
	for _, d := range diags {
		if !claim(exps, d) {
			kind := ""
			if d.Suppressed {
				kind = " (suppressed)"
			}
			t.Errorf("unexpected diagnostic%s: %s", kind, d)
		}
	}
	for _, e := range exps {
		if !e.used {
			kind := "a"
			if e.suppressed {
				kind = "a suppressed"
			}
			t.Errorf("%s:%d: want %s %s diagnostic matching %q, got none", e.file, e.line, kind, a.Name, e.re)
		}
	}
}

// claim marks the first unused expectation matching d, reporting
// whether one existed.
func claim(exps []*expectation, d analysis.Diagnostic) bool {
	for _, e := range exps {
		if e.used || e.file != d.Pos.Filename || e.line != d.Pos.Line || e.suppressed != d.Suppressed {
			continue
		}
		if e.re.MatchString(d.Message) {
			e.used = true
			return true
		}
	}
	return false
}

// overlayOf maps every fixture directory under the testdata tree to an
// import path relative to the tree root.
func overlayOf(t *testing.T, testdata string) map[string]string {
	t.Helper()
	overlay := map[string]string{}
	err := filepath.WalkDir(testdata, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(testdata, path)
				if err != nil {
					return err
				}
				overlay[filepath.ToSlash(rel)] = path
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", testdata, err)
	}
	if len(overlay) == 0 {
		t.Fatalf("no fixture packages under %s", testdata)
	}
	return overlay
}

// collectWants scans every non-test .go file of the fixture packages —
// textually, so build-tag-excluded variant files count too.
func collectWants(t *testing.T, pkgs []*analysis.Package) []*expectation {
	t.Helper()
	var exps []*expectation
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		if seen[pkg.Dir] {
			continue
		}
		seen[pkg.Dir] = true
		entries, err := os.ReadDir(pkg.Dir)
		if err != nil {
			t.Fatalf("read fixture dir %s: %v", pkg.Dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(pkg.Dir, name)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read fixture %s: %v", path, err)
			}
			for i, line := range strings.Split(string(raw), "\n") {
				m := wantRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				for _, pm := range patRe.FindAllStringSubmatch(m[2], -1) {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pm[1], err)
					}
					exps = append(exps, &expectation{
						file:       path,
						line:       i + 1,
						re:         re,
						suppressed: m[1] == ":suppressed",
					})
				}
			}
		}
	}
	return exps
}
