// Package analysis is the engine's static-analysis layer: a small,
// dependency-free clone of the golang.org/x/tools/go/analysis API plus
// the repo-specific analyzers that machine-check invariants this
// codebase otherwise states only in prose (lock ordering, per-query
// I/O metering, sentinel-error discipline, build-tag surface parity,
// core determinism — see docs/static-analysis.md for the full list and
// where each invariant is argued).
//
// Why a clone and not the real thing: the build environment pins the
// module graph to the standard library (no module downloads), so the
// framework here reimplements the narrow slice of go/analysis the
// analyzers need — an Analyzer with a Run func over a type-checked
// Pass, file:line diagnostics, and an analysistest-style fixture
// harness (package analysistest) driven by "// want" comments. The
// loader (load.go) stands in for go/packages: it shells out to
// `go list -deps -json` for the dependency-ordered package graph and
// type-checks every package from source with go/types.
//
// # Suppressions
//
// A finding that is a deliberate exception is silenced in-tree with a
// comment on the flagged line or the line directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a bare allowance fails the run. Suppressions
// are visible, greppable policy: the analyzer still fires internally,
// the driver just reports it as suppressed instead of failing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Mirrors the x/tools shape
// so the analyzers port wholesale if the dependency ever lands.
type Analyzer struct {
	// Name is the analyzer's registry key: lowercase, also the token
	// //lint:allow comments name.
	Name string
	// Doc is a one-line statement of the invariant the analyzer encodes.
	Doc string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed sources (build-tag filtered the
	// same way `go build` would, comments preserved).
	Files []*ast.File
	// Pkg and TypesInfo carry full type information for the package.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package's source directory (tagparity reads files the
	// current build context excludes).
	Dir string
	// GoFiles are the compiled file paths, parallel to Files.
	GoFiles []string

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks findings silenced by a //lint:allow comment;
	// they are kept (visible in -v output) but do not fail the run.
	Suppressed bool
	// SuppressReason is the allowance's stated justification.
	SuppressReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings, suppression-annotated and sorted by position. Packages
// should be the analysis roots only (the loader's deps are reachable
// through the type information, not analyzed themselves).
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Dir:       pkg.Dir,
				GoFiles:   pkg.GoFiles,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		applySuppressions(diags, pkg)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// allowPrefix starts a suppression comment. The comment grammar is
// //lint:allow <analyzer> <reason...>.
const allowPrefix = "lint:allow"

// suppression is one parsed //lint:allow comment.
type suppression struct {
	analyzer string
	reason   string
}

// applySuppressions marks findings covered by a //lint:allow comment on
// the same line or the line directly above. Only findings inside pkg's
// files are considered (diags may already hold other packages').
func applySuppressions(diags []Diagnostic, pkg *Package) {
	// file -> line -> suppressions declared there.
	byLine := make(map[string]map[int][]suppression)
	for i, f := range pkg.Files {
		filename := pkg.GoFiles[i]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				sup, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				m := byLine[filename]
				if m == nil {
					m = make(map[int][]suppression)
					byLine[filename] = m
				}
				m[line] = append(m[line], sup)
			}
		}
	}
	if len(byLine) == 0 {
		return
	}
	for i := range diags {
		d := &diags[i]
		if d.Suppressed {
			continue
		}
		m := byLine[d.Pos.Filename]
		if m == nil {
			continue
		}
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, sup := range m[line] {
				if sup.analyzer == d.Analyzer {
					d.Suppressed = true
					d.SuppressReason = sup.reason
				}
			}
		}
	}
}

// parseAllow parses one comment as a suppression. Comments that start
// the allow grammar but are malformed (no analyzer, no reason) are NOT
// valid suppressions — a silent typo must not silently allow.
func parseAllow(text string) (suppression, bool) {
	body := strings.TrimPrefix(text, "//")
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, allowPrefix) {
		return suppression{}, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(body, allowPrefix))
	name, reason, _ := strings.Cut(rest, " ")
	reason = strings.TrimSpace(reason)
	if name == "" || reason == "" {
		return suppression{}, false
	}
	return suppression{analyzer: name, reason: reason}, true
}

// pathIs reports whether pkg's import path names the given repo
// package: an exact match or a "/"-boundary suffix match, so fixture
// packages under testdata (e.g. "locksafe/internal/engine") are
// analyzed exactly like the real "repro/internal/engine".
func pathIs(pkg *types.Package, repoPath string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == repoPath || strings.HasSuffix(p, "/"+repoPath)
}

// pathIsAny reports whether pkg matches any of the repo paths.
func pathIsAny(pkg *types.Package, repoPaths ...string) bool {
	for _, rp := range repoPaths {
		if pathIs(pkg, rp) {
			return true
		}
	}
	return false
}
