package analysis

import (
	"go/ast"
	"go/types"
)

// Metered enforces the per-query I/O metering contract: every index
// read made on behalf of a query must flow through an IOStats child
// meter (storage godoc, docs/architecture.md "per-query I/O meters").
// The paper's Fig. 10/Fig. 12 evaluation counts — and the property
// tests asserting "evaluated/op bit-identical" across cache hits,
// parallelism levels and replicas — are only meaningful if no read
// slips past the meter. Concretely, in internal/core, internal/topk,
// internal/engine and internal/shard:
//
//   - (*storage.TupleFile).Get and (*storage.ListFile).Cursor charge
//     the file-wide meter, not the query's; the *With variants (or a
//     lists.Index WithStats view) are required;
//   - (*storage.Pager).ReadRange and .Slice sit below the logical
//     meter entirely and are storage-internal;
//   - in internal/engine and internal/shard, a TA constructor
//     (topk.New / NewMulti / NewNRA) must receive an index derived
//     from Engine.queryIndex() or a .WithStats(...) view, never a raw
//     index. The shard coordinator merges per-shard metrics into the
//     distributed answer's cost report, so a coordinator-side read
//     outside a child meter would silently undercount exactly like an
//     engine-side one.
var Metered = &Analyzer{
	Name: "metered",
	Doc:  "index reads in core/topk/engine/shard must flow through an IOStats child meter",
	Run:  runMetered,
}

// unmeteredMethods maps storage receiver types to their file-wide-meter
// (or meter-bypassing) read methods and the required replacement.
var unmeteredMethods = map[string]map[string]string{
	"TupleFile": {"Get": "GetWith(id, st) with the query's child meter"},
	"ListFile":  {"Cursor": "CursorWith(dim, st) with the query's child meter"},
	"Pager": {
		"ReadRange": "a TupleFile/ListFile accessor that charges the logical meter",
		"Slice":     "a TupleFile/ListFile accessor that charges the logical meter",
	},
}

// taConstructors are the topk entry points whose index argument must be
// metered.
var taConstructors = map[string]bool{"New": true, "NewMulti": true, "NewNRA": true}

func runMetered(pass *Pass) error {
	if !pathIsAny(pass.Pkg, "internal/core", "internal/topk", "internal/engine", "internal/shard") {
		return nil
	}
	checkTA := pathIsAny(pass.Pkg, "internal/engine", "internal/shard")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				meteredFunc(pass, fn, checkTA)
			}
		}
	}
	return nil
}

func meteredFunc(pass *Pass, fn *ast.FuncDecl, checkTA bool) {
	// Locals assigned from queryIndex()/.WithStats(...) are metered
	// views; collected first so later uses anywhere in the body count
	// (assignment order is checked by the compiler, not us).
	meteredVars := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if !isMeteredIndexExpr(pass, rhs, nil) {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					meteredVars[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					meteredVars[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, ok := storageMethodCall(pass, call); ok {
			if fix, bad := unmeteredMethods[recv][method]; bad {
				pass.Reportf(call.Pos(), "(*storage.%s).%s charges the file-wide meter, not this query's: use %s", recv, method, fix)
			}
			return true
		}
		if checkTA {
			if obj := calleeObject(pass, call); obj != nil && obj.Pkg() != nil &&
				pathIs(obj.Pkg(), "internal/topk") && taConstructors[obj.Name()] && len(call.Args) > 0 {
				if !isMeteredIndexExpr(pass, call.Args[0], meteredVars) {
					pass.Reportf(call.Args[0].Pos(), "topk.%s over an unmetered index: pass e.queryIndex() (or a .WithStats child-meter view) so the query's I/O is metered in isolation", obj.Name())
				}
			}
		}
		return true
	})
}

// storageMethodCall resolves a call to a method whose receiver is a
// named type of internal/storage, returning the receiver type name and
// method name.
func storageMethodCall(pass *Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	rt := selection.Recv()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || !pathIs(named.Obj().Pkg(), "internal/storage") {
		return "", "", false
	}
	return named.Obj().Name(), sel.Sel.Name, true
}

// isMeteredIndexExpr reports whether e evidently carries a per-query
// meter: a direct queryIndex()/.WithStats(...) call, or a local
// variable previously assigned from one.
func isMeteredIndexExpr(pass *Pass, e ast.Expr, meteredVars map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.SelectorExpr:
			return fun.Sel.Name == "queryIndex" || fun.Sel.Name == "WithStats"
		case *ast.Ident:
			return fun.Name == "queryIndex" || fun.Name == "WithStats"
		}
	case *ast.Ident:
		if meteredVars == nil {
			return false
		}
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return meteredVars[obj]
		}
	}
	return false
}
