package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// ObsReg enforces the observability registry discipline documented in
// internal/obs and docs/observability.md. The registry panics on a
// duplicate or malformed name, so a registration reached twice (a
// constructor, a request handler) crashes the process at an arbitrary
// later time; and a label minted from request data grows one child
// series per distinct value — an unbounded-cardinality leak that no
// test catches before production. Three rules, checked everywhere
// outside internal/obs itself:
//
//   - obs.New* metric constructors may appear only in package-level
//     var declarations or init functions (once-per-process, at load);
//   - the metric name argument must be a string literal matching
//     ^ir_[a-z][a-z0-9_]*$ (the catalogue namespace docscheck
//     cross-checks against docs/observability.md);
//   - the label-value argument of CounterVec.Inc/Add/Value and
//     HistogramVec.Observe/Count must be a compile-time constant. A
//     provably bounded runtime value (an enum's String, a fixed route
//     table) is a deliberate exception: suppress with
//     //lint:allow obsreg <reason>.
//
// It also bans bare log.Print/Printf/Println (std log) outside
// internal/obs: the daemons log structured JSON through obs.Log, and a
// stray Printf bypasses the request-ID correlation. log.Fatal* stays
// legal — it is process-abort control flow, not logging.
var ObsReg = &Analyzer{
	Name: "obsreg",
	Doc:  "metrics registered once at init under constant ir_ names, no request-derived label values, no bare log.Print outside internal/obs",
	Run:  runObsReg,
}

// obsConstructors are the registering constructors of internal/obs;
// the value is the index of the metric-name argument.
var obsConstructors = map[string]int{
	"NewCounter":          0,
	"NewCounterVec":       0,
	"NewGauge":            0,
	"NewGaugeFunc":        0,
	"NewLabeledGaugeFunc": 0,
	"NewHistogram":        0,
	"NewHistogramVec":     0,
}

// obsLabeledMethods maps metric-vec method names to the index of their
// label-value argument.
var obsLabeledMethods = map[string]int{
	"Inc":     0,
	"Add":     0,
	"Value":   0,
	"Observe": 0,
	"Count":   0,
}

// obsMetricName is the namespace contract of the registry.
var obsMetricName = regexp.MustCompile(`^ir_[a-z][a-z0-9_]*$`)

// bannedLogFuncs are the std-log printers obs.Log replaces.
var bannedLogFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

func runObsReg(pass *Pass) error {
	if pathIs(pass.Pkg, "internal/obs") {
		return nil
	}
	for _, f := range pass.Files {
		// Registration sites allowed in this file: package-level var
		// declarations and init bodies.
		var allowed []ast.Node
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok == token.VAR {
					allowed = append(allowed, d)
				}
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.Name == "init" {
					allowed = append(allowed, d)
				}
			}
		}
		inAllowed := func(pos token.Pos) bool {
			for _, n := range allowed {
				if n.Pos() <= pos && pos <= n.End() {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "log" && bannedLogFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil:
				pass.Reportf(call.Pos(), "bare log.%s: use the structured obs logger (obs.Log / obs.LogWith) so the line is JSON and carries the request ID", fn.Name())

			case strings.HasSuffix(fn.Pkg().Path(), "internal/obs") && fn.Type().(*types.Signature).Recv() == nil:
				nameArg, isCtor := obsConstructors[fn.Name()]
				if !isCtor {
					return true
				}
				if !inAllowed(call.Pos()) {
					pass.Reportf(call.Pos(), "obs.%s outside a package-level var declaration or init: the registry panics on re-registration, so construction must happen exactly once at load", fn.Name())
				}
				if nameArg < len(call.Args) {
					if lit, ok := call.Args[nameArg].(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if name, err := strconv.Unquote(lit.Value); err == nil && !obsMetricName.MatchString(name) {
							pass.Reportf(lit.Pos(), "metric name %q must match ^ir_[a-z][a-z0-9_]*$ (the catalogue namespace of docs/observability.md)", name)
						}
					} else {
						pass.Reportf(call.Args[nameArg].Pos(), "metric name must be a string literal, not a computed value: the catalogue and docscheck cross-check names statically")
					}
				}

			case obsMetricRecv(fn):
				argIdx, isLabeled := obsLabeledMethods[fn.Name()]
				if !isLabeled || argIdx >= len(call.Args) {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[call.Args[argIdx]]; !ok || tv.Value == nil {
					pass.Reportf(call.Args[argIdx].Pos(), "non-constant label value in %s.%s: request-derived labels create unbounded series cardinality (suppress with a reason when the value set is provably bounded)", recvTypeName(fn), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// obsMetricRecv reports whether fn is a method of obs.CounterVec or
// obs.HistogramVec — the labeled metric types whose update methods
// take a label value.
func obsMetricRecv(fn *types.Func) bool {
	name := recvTypeName(fn)
	return name == "CounterVec" || name == "HistogramVec"
}

// recvTypeName returns the bare type name of fn's receiver when fn is
// a method of a type declared in an internal/obs package, "" otherwise.
func recvTypeName(fn *types.Func) string {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	if !strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs") {
		return ""
	}
	return named.Obj().Name()
}
