package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// TagParity guards the build-tag fallback matrix. The repo ships
// variant pairs selected by custom build tags — vec/kernel.go (!noasm)
// ↔ kernel_noasm.go (noasm), storage/mmap.go ↔ mmap_fallback.go
// (nommap) — and CI's `make test-fallback` only proves anything if
// both sides of each pair keep compiling the same package-level
// surface. A declaration added to one side only, or a signature that
// drifts, silently breaks the other build until the fallback CI leg
// runs (or worse, until a user builds with the tag). docs/architecture.md
// ("storage layer", "kernel matrix") states the parity requirement.
//
// The analyzer discovers pairs generically: for every custom (non-
// platform) tag appearing in a package's build constraints, the files
// whose inclusion flips when the tag flips form the two sides, and
// every top-level declaration on one side must exist on the other with
// an identical signature (functions) or at least the same name and
// kind (types, consts, vars — their definitions legitimately differ
// between variants).
var TagParity = &Analyzer{
	Name: "tagparity",
	Doc:  "build-tag variant file pairs must declare identical package-level surfaces",
	Run:  runTagParity,
}

// knownPlatformTags are constraint tags that select platforms or
// toolchains rather than repo variants.
var knownPlatformTags = map[string]bool{
	"linux": true, "darwin": true, "windows": true, "freebsd": true,
	"netbsd": true, "openbsd": true, "solaris": true, "aix": true,
	"js": true, "wasip1": true, "plan9": true, "android": true,
	"ios": true, "illumos": true, "dragonfly": true, "hurd": true,
	"amd64": true, "arm64": true, "386": true, "arm": true,
	"riscv64": true, "ppc64": true, "ppc64le": true, "s390x": true,
	"mips": true, "mipsle": true, "mips64": true, "mips64le": true,
	"loong64": true, "wasm": true, "unix": true, "gc": true,
	"gccgo": true, "cgo": true, "race": true, "msan": true, "asan": true,
	"purego": true,
}

// variantFile is one .go file with a parsed build constraint.
type variantFile struct {
	path string
	expr constraint.Expr // nil: unconstrained
}

func runTagParity(pass *Pass) error {
	files, err := constrainedFiles(pass.Dir)
	if err != nil {
		return err
	}
	// Collect the custom tags mentioned anywhere in this package.
	tags := map[string]bool{}
	for _, vf := range files {
		if vf.expr == nil {
			continue
		}
		collectCustomTags(vf.expr, tags)
	}
	for _, tag := range sortedKeys(tags) {
		onSide, offSide := splitByTag(files, tag)
		if len(onSide) == 0 || len(offSide) == 0 {
			continue
		}
		if err := compareSurfaces(pass, tag, onSide, offSide); err != nil {
			return err
		}
	}
	return nil
}

// constrainedFiles lists the package directory's non-test .go files
// with their parsed //go:build constraints.
func constrainedFiles(dir string) ([]variantFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tagparity: %v", err)
	}
	var out []variantFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		expr, err := buildConstraintOf(path)
		if err != nil {
			return nil, err
		}
		out = append(out, variantFile{path: path, expr: expr})
	}
	return out, nil
}

// buildConstraintOf parses a file's //go:build line, nil when absent.
func buildConstraintOf(path string) (constraint.Expr, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			break
		}
		if constraint.IsGoBuild(line) {
			expr, err := constraint.Parse(line)
			if err != nil {
				return nil, fmt.Errorf("tagparity: %s: %v", path, err)
			}
			return expr, nil
		}
	}
	return nil, nil
}

// collectCustomTags walks a constraint expression for non-platform
// tags.
func collectCustomTags(e constraint.Expr, into map[string]bool) {
	switch e := e.(type) {
	case *constraint.TagExpr:
		if !knownPlatformTags[e.Tag] && !strings.HasPrefix(e.Tag, "go1") {
			into[e.Tag] = true
		}
	case *constraint.NotExpr:
		collectCustomTags(e.X, into)
	case *constraint.AndExpr:
		collectCustomTags(e.X, into)
		collectCustomTags(e.Y, into)
	case *constraint.OrExpr:
		collectCustomTags(e.X, into)
		collectCustomTags(e.Y, into)
	}
}

// splitByTag partitions files whose inclusion flips when tag flips:
// onSide compiles only with the tag set, offSide only without it.
func splitByTag(files []variantFile, tag string) (onSide, offSide []string) {
	for _, vf := range files {
		if vf.expr == nil {
			continue
		}
		incOn := vf.expr.Eval(func(t string) bool {
			if t == tag {
				return true
			}
			return defaultTag(t)
		})
		incOff := vf.expr.Eval(defaultTag)
		switch {
		case incOn && !incOff:
			onSide = append(onSide, vf.path)
		case incOff && !incOn:
			offSide = append(offSide, vf.path)
		}
	}
	return onSide, offSide
}

// declInfo is one top-level declaration: a stable key, its position,
// and (functions only) a normalized signature.
type declInfo struct {
	key string
	pos token.Pos
	sig string
}

// compareSurfaces cross-checks the two sides' declaration sets.
func compareSurfaces(pass *Pass, tag string, onSide, offSide []string) error {
	on, err := surfaceOf(pass.Fset, onSide)
	if err != nil {
		return err
	}
	off, err := surfaceOf(pass.Fset, offSide)
	if err != nil {
		return err
	}
	report := func(from, to map[string]declInfo, fromDesc, toDesc string) {
		for _, key := range sortedDeclKeys(from) {
			d := from[key]
			counterpart, ok := to[key]
			if !ok {
				pass.Reportf(d.pos, "%s is declared in the %s build variant but missing from the %s side (tag %q): the fallback matrix would stop compiling the same surface", key, fromDesc, toDesc, tag)
				continue
			}
			if d.sig != counterpart.sig {
				pass.Reportf(d.pos, "%s: signature %s in the %s build variant but %s on the %s side (tag %q)", key, d.sig, fromDesc, counterpart.sig, toDesc, tag)
			}
		}
	}
	report(on, off, tag, "!"+tag)
	// Missing-only in the reverse direction; signature mismatches were
	// already reported once above.
	for _, key := range sortedDeclKeys(off) {
		if _, ok := on[key]; !ok {
			d := off[key]
			pass.Reportf(d.pos, "%s is declared in the !%s build variant but missing from the %s side (tag %q): the fallback matrix would stop compiling the same surface", key, tag, tag, tag)
		}
	}
	return nil
}

// surfaceOf parses variant files standalone (they are excluded from the
// type-checked package under the default tags) and collects top-level
// declarations.
func surfaceOf(fset *token.FileSet, paths []string) (map[string]declInfo, error) {
	out := map[string]declInfo{}
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("tagparity: parse %s: %v", path, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				key := "func " + d.Name.Name
				if d.Recv != nil && len(d.Recv.List) > 0 {
					key = fmt.Sprintf("method (%s).%s", receiverBase(d.Recv.List[0].Type), d.Name.Name)
				}
				out[key] = declInfo{key: key, pos: d.Pos(), sig: signatureString(fset, d.Type)}
			case *ast.GenDecl:
				kind := d.Tok.String() // const, var, type
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						key := "type " + s.Name.Name
						out[key] = declInfo{key: key, pos: s.Pos()}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.Name == "_" {
								continue
							}
							key := kind + " " + name.Name
							out[key] = declInfo{key: key, pos: name.Pos()}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// receiverBase renders a receiver's base type name (stars and type
// parameters stripped).
func receiverBase(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return receiverBase(e.X)
	case *ast.IndexExpr:
		return receiverBase(e.X)
	case *ast.IndexListExpr:
		return receiverBase(e.X)
	case *ast.Ident:
		return e.Name
	default:
		return "?"
	}
}

// signatureString renders a function type as "(types) (types)" with
// parameter names dropped, so renaming a parameter is not drift but
// changing a type is.
func signatureString(fset *token.FileSet, ft *ast.FuncType) string {
	var b strings.Builder
	b.WriteString("(")
	writeFieldTypes(&b, fset, ft.Params)
	b.WriteString(")")
	if ft.Results != nil && len(ft.Results.List) > 0 {
		b.WriteString(" (")
		writeFieldTypes(&b, fset, ft.Results)
		b.WriteString(")")
	}
	return b.String()
}

func writeFieldTypes(b *strings.Builder, fset *token.FileSet, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	first := true
	for _, field := range fl.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		var buf bytes.Buffer
		printer.Fprint(&buf, fset, field.Type)
		for i := 0; i < n; i++ {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.Write(buf.Bytes())
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedDeclKeys(m map[string]declInfo) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
