// Stub of the real internal/lists surface the locksafe fixtures call.
package lists

func SaveDataset(path string, data []byte) error { return nil }

func Walk(fn func(id uint64)) {}
