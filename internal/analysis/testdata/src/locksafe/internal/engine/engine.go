// Fixture for the locksafe analyzer: the path suffix internal/engine
// puts it in scope, and the Engine/mu/ckptMu names match the real
// engine's.
package engine

import (
	"os"
	"sync"
	"time"

	"locksafe/internal/lists"
	"locksafe/internal/wal"
)

type Engine struct {
	mu     sync.RWMutex
	ckptMu sync.Mutex
	log    *wal.Writer
}

// badCheckpoint holds the write lock across the rewrite: every
// deny-set call fires.
func (e *Engine) badCheckpoint(dir string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	lists.SaveDataset(dir, nil)          // want `checkpoint rewrite belongs in the unlocked phase`
	wal.SyncFile(dir)                    // want `fsync blocks every queued query`
	os.WriteFile(dir, nil, 0o644)        // want `file writes block every queued query`
	time.Sleep(time.Millisecond)         // want `stalls all queries`
	if err := e.log.Sync(); err != nil { // want `explicit WAL fsync belongs outside`
		return
	}
}

// goodCheckpoint is the documented three-phase shape: snapshot under
// RLock, rewrite unlocked, cheap publish under the write lock. The WAL
// append under the lock is the deliberate commit-ordering exception.
func (e *Engine) goodCheckpoint(dir string) {
	e.mu.RLock()
	snap := e.snapshotLocked()
	e.mu.RUnlock()
	lists.SaveDataset(dir, snap)
	wal.SyncFile(dir)
	e.mu.Lock()
	e.log.Append(nil)
	e.mu.Unlock()
}

func (e *Engine) snapshotLocked() []byte { return nil }

// flushLocked: the *Locked suffix means the caller holds mu, so the
// deny set applies to the whole body.
func (e *Engine) flushLocked(dir string) {
	wal.SyncDir(dir) // want `fsync blocks every queued query`
	e.log.Append(nil)
}

// badDefer schedules the fsync to run while the lock is still held
// (LIFO: after the deferred Unlock was registered).
func (e *Engine) badDefer(path string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer wal.SyncFile(path) // want `fsync blocks every queued query`
}

// reenter acquires mu while already holding it.
func (e *Engine) reenter() {
	e.mu.RLock()
	e.mu.RLock() // want `already held`
	e.mu.RUnlock()
	e.mu.RUnlock()
}

// inverted takes the checkpoint mutex under mu; the documented order
// is the other way around.
func (e *Engine) inverted() {
	e.mu.Lock()
	e.ckptMu.Lock() // want `ckptMu BEFORE mu`
	e.ckptMu.Unlock()
	e.mu.Unlock()
}

// Invalidate acquires mu itself (like the real engine's), so calling
// it with mu held deadlocks.
func (e *Engine) Invalidate() {
	e.mu.Lock()
	defer e.mu.Unlock()
}

func (e *Engine) nested() {
	e.mu.Lock()
	e.Invalidate() // want `calling it with mu held deadlocks`
	e.mu.Unlock()
}

// badWalk hands the layer below a callback that takes the outermost
// lock.
func (e *Engine) badWalk() {
	lists.Walk(func(id uint64) { // want `below the engine layer`
		e.mu.RLock()
		e.mu.RUnlock()
	})
}

// badReplay: same inversion through the wal package.
func (e *Engine) badReplay() {
	wal.Replay(func(seq uint64) { // want `below the engine layer`
		e.mu.Lock()
		e.mu.Unlock()
	})
}

// goodWalk's callback never locks; no finding.
func (e *Engine) goodWalk(total *int) {
	lists.Walk(func(id uint64) {
		*total++
	})
}

// deferredWork defines (but does not run) a closure under the lock;
// the literal's body is not part of the critical section.
func (e *Engine) deferredWork() {
	e.mu.Lock()
	f := func() { wal.SyncFile("x") }
	e.mu.Unlock()
	f()
}

// publish demonstrates a reviewed, documented exception.
func (e *Engine) publish(dir string) {
	e.mu.Lock()
	//lint:allow locksafe startup-only manifest swap, measured sub-millisecond
	os.Rename(dir, dir) // want:suppressed `directory syscalls block`
	e.mu.Unlock()
}
