// Stub of the real internal/wal surface the locksafe fixtures call.
package wal

func SyncFile(path string) error { return nil }

func SyncDir(dir string) error { return nil }

type Writer struct{}

func (w *Writer) Sync() error { return nil }

func (w *Writer) Append(payload []byte) error { return nil }

// Replay models a wal API taking a callback, for the lock-inversion
// fixture.
func Replay(fn func(seq uint64)) {}
