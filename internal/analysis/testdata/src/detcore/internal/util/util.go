// Out-of-scope package: detcore must not fire outside the core paths.
package util

import "time"

func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func Stamp() time.Time { return time.Now() }
