// Fixture for the detcore analyzer: nondeterminism sources inside a
// deterministic-core package path.
package core

import (
	_ "math/rand" // want `math/rand`
	"time"
)

func accumulate(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // want `range over a map`
		total += v
	}
	return total
}

func timed() time.Duration {
	t0 := time.Now()      // want `time.Now`
	return time.Since(t0) // want `time.Since`
}

func orderedSum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

func allowedCount(m map[int]bool) int {
	n := 0
	//lint:allow detcore counting only: iteration order cannot affect a cardinality
	for range m { // want:suppressed `range over a map`
		n++
	}
	return n
}
