// Fixture for the metered analyzer's core-side rules: raw storage
// reads in the computation layer bypass the query's meter.
package core

import "metered/internal/storage"

func scan(lf *storage.ListFile, pg *storage.Pager, st *storage.IOStats) {
	_ = lf.Cursor(0)        // want `charges the file-wide meter`
	_ = pg.ReadRange(0, 64) // want `charges the file-wide meter`
	_ = pg.Slice(0, 64)     // want `charges the file-wide meter`
	_ = lf.CursorWith(0, st)
}
