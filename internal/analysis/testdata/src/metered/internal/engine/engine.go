// Fixture for the metered analyzer's engine-side rules: TA
// constructors must receive a queryIndex()/WithStats view.
package engine

import (
	"metered/internal/storage"
	"metered/internal/topk"
)

type Engine struct {
	ix topk.Index
	st *storage.IOStats
}

func (e *Engine) queryIndex() topk.Index { return e.ix }

func (e *Engine) bad(tf *storage.TupleFile, k int) {
	_ = tf.Get(7)         // want `charges the file-wide meter`
	_ = topk.New(e.ix, k) // want `unmetered index`
}

func (e *Engine) good(tf *storage.TupleFile, k int) {
	_ = tf.GetWith(7, e.st.Child())
	_ = topk.New(e.queryIndex(), k)
	ix := e.queryIndex()
	_ = topk.NewMulti(ix, k)
}

// startup is a reviewed exception: the boot-time integrity scan is
// deliberately charged to the file-wide meter.
func (e *Engine) startup(tf *storage.TupleFile) {
	//lint:allow metered boot-time integrity scan is deliberately file-wide, no query is running
	_ = tf.Get(1) // want:suppressed `charges the file-wide meter`
}
