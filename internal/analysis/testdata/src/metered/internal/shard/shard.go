// Fixture for the metered analyzer's shard-coordinator rules: the
// scatter-gather layer merges per-shard cost metrics into the
// distributed answer, so coordinator-side reads must charge a child
// meter exactly like engine-side ones, and any TA it spins up must run
// over a metered index view.
package shard

import (
	"metered/internal/storage"
	"metered/internal/topk"
)

type Coordinator struct {
	ix topk.Index
	st *storage.IOStats
}

func (c *Coordinator) queryIndex() topk.Index { return c.ix }

func (c *Coordinator) bad(tf *storage.TupleFile, lf *storage.ListFile, k int) {
	_ = tf.Get(3)         // want `charges the file-wide meter`
	_ = lf.Cursor(0)      // want `charges the file-wide meter`
	_ = topk.New(c.ix, k) // want `unmetered index`
}

func (c *Coordinator) good(tf *storage.TupleFile, lf *storage.ListFile, k int) {
	_ = tf.GetWith(3, c.st.Child())
	_ = lf.CursorWith(0, c.st.Child())
	_ = topk.New(c.queryIndex(), k)
	ix := c.queryIndex()
	_ = topk.NewNRA(ix, k)
}
