// Stub of the real internal/storage metering surface.
package storage

type IOStats struct{}

func (s *IOStats) Child() *IOStats { return &IOStats{} }

type TupleFile struct{}

func (t *TupleFile) Get(id uint64) []float64 { return nil }

func (t *TupleFile) GetWith(id uint64, st *IOStats) []float64 { return nil }

type Cursor struct{}

type ListFile struct{}

func (l *ListFile) Cursor(dim int) *Cursor { return nil }

func (l *ListFile) CursorWith(dim int, st *IOStats) *Cursor { return nil }

type Pager struct{}

func (p *Pager) ReadRange(off, n int64) []byte { return nil }

func (p *Pager) Slice(off, n int64) []byte { return nil }
