// Stub of the real internal/topk constructor surface.
package topk

type Index interface{ Dims() int }

type TA struct{}

func New(ix Index, k int) *TA { return &TA{} }

func NewMulti(ix Index, k int) *TA { return &TA{} }

func NewNRA(ix Index, k int) *TA { return &TA{} }
