//go:build !slow

// Fixture for the tagparity analyzer: the slow tag splits this package
// into a variant pair whose surfaces have drifted.
package vec

const lanes = 4

type Kernel struct{}

func Dot(a, b []float64) float64 { return 0 }

func FastOnly() {} // want `missing from the slow side`
