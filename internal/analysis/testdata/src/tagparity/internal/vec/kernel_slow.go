//go:build slow

package vec

const lanes = 4

type Kernel struct{}

func Dot(a, b []float64) (float64, error) { return 0, nil } // want `signature`

func SlowOnly() {} // want `missing from the !slow side`
