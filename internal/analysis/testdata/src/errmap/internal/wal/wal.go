// Fixture for the errmap sentinel-comparison rules.
package wal

import (
	"errors"
	"syscall"
)

var ErrCorrupt = errors.New("wal: corrupt record")

func classify(err error) string {
	if err == ErrCorrupt { // want `use errors.Is`
		return "corrupt"
	}
	if ErrCorrupt == err { // want `use errors.Is`
		return "corrupt"
	}
	if err != ErrCorrupt { // want `use errors.Is`
		return "other"
	}
	if err == syscall.EWOULDBLOCK { // want `use errors.Is`
		return "busy"
	}
	if errors.Is(err, ErrCorrupt) {
		return "corrupt"
	}
	if err != nil {
		return "other"
	}
	return ""
}

// errnoPair compares two raw Errno values: identity is exact here, no
// wrapping is possible.
func errnoPair(a, b syscall.Errno) bool { return a == b }

func route(err error) int {
	switch err {
	case nil:
		return 0
	case ErrCorrupt: // want `switch over an error value`
		return 1
	}
	return 2
}

// legacy is a reviewed exception kept for the suppression grammar.
func legacy(err error) bool {
	//lint:allow errmap this path receives the sentinel unwrapped by construction
	return err == ErrCorrupt // want:suppressed `use errors.Is`
}
