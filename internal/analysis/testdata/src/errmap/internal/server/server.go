// Fixture for the errmap server-side rules: status writing must flow
// through the central mapping helpers.
package server

import (
	"fmt"
	"net/http"
)

// httpError and writeJSON mirror the real helpers; status plumbing
// inside them IS the mapping.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.WriteHeader(code)
	fmt.Fprintln(w, msg)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.WriteHeader(code)
}

func engineError(w http.ResponseWriter, err error) {
	w.WriteHeader(503)
}

func handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `bypasses the JSON error body`
	w.WriteHeader(500)                                    // want `literal 500 status`
}

func handleGood(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusNoContent)
	httpError(w, 400, "bad request")
}
