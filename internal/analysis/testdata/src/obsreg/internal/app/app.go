// Fixture for the obsreg analyzer: registration placement, name
// discipline, label-value constness and the bare-log ban.
package app

import (
	"log"
	"net/http"

	"obsreg/internal/obs"
)

// Legal registrations: package-level var declarations with literal,
// well-formed names.
var (
	mRequests = obs.NewCounterVec("ir_app_requests_total", "requests", "endpoint")
	mLatency  = obs.NewHistogramVec("ir_app_seconds", "latency", "endpoint", obs.LatencyBuckets)
	mDepth    = obs.NewHistogram("ir_app_depth", "depth", obs.LatencyBuckets)
)

// Legal: init is a once-per-process site too.
var mBoot *obs.Counter

func init() {
	mBoot = obs.NewCounter("ir_app_boots_total", "boots")
}

// Bad names, still at package level.
var (
	mBadPrefix = obs.NewCounter("app_requests_total", "no ir_ prefix") // want `must match \^ir_`
	mBadChars  = obs.NewGauge("ir_App-Temp", "bad characters")         // want `must match \^ir_`
)

var metricName = "ir_app_dynamic"

var mComputed = obs.NewCounter(metricName, "computed name") // want `must be a string literal`

// Registration inside a request path: the registry panics on the
// second call.
func handle(w http.ResponseWriter, r *http.Request) {
	c := obs.NewCounter("ir_app_lazy_total", "lazy") // want `outside a package-level var declaration or init`
	c.Inc()
}

// Constant label values are fine; so are plain counters and
// histograms, which carry no label at all.
func observe(d float64) {
	mRequests.Inc("topk")
	mLatency.Observe("topk", d)
	mDepth.Observe(d)
	mBoot.Inc()
}

// Request-derived label values explode series cardinality.
func observePath(r *http.Request, d float64) {
	mRequests.Inc(r.URL.Path)          // want `non-constant label value in CounterVec.Inc`
	mLatency.Observe(r.URL.Path, d)    // want `non-constant label value in HistogramVec.Observe`
	_ = mRequests.Value(r.URL.RawPath) // want `non-constant label value in CounterVec.Value`
}

// A provably bounded runtime value may be suppressed with a reason.
func observeBounded(endpoint string) {
	//lint:allow obsreg endpoint comes from the fixed route table
	mRequests.Inc(endpoint) // want:suppressed `non-constant label value`
}

// Bare std-log printers bypass the structured JSON logger.
func logthings(err error) {
	log.Printf("boom: %v", err) // want `bare log.Printf`
	log.Println("started")      // want `bare log.Println`
	if err != nil {
		log.Fatalf("fatal: %v", err) // Fatal* is process-abort control flow, allowed.
	}
}

// A local logger instance's Printf is not the package printer.
var custom = log.New(nil, "", 0)

func logCustom() {
	custom.Printf("fine")
}
