// Stub of the real internal/obs surface, just enough for the obsreg
// fixture to type-check. The analyzer matches this package by the
// internal/obs path suffix, exactly like the real one.
package obs

type Counter struct{}

func (c *Counter) Inc()        {}
func (c *Counter) Add(n int64) {}

type CounterVec struct{}

func (c *CounterVec) Inc(value string)          {}
func (c *CounterVec) Add(value string, n int64) {}
func (c *CounterVec) Value(value string) int64  { return 0 }

type Gauge struct{}

func (g *Gauge) Set(v float64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

type HistogramVec struct{}

func (h *HistogramVec) Observe(value string, v float64) {}
func (h *HistogramVec) Count(value string) int64        { return 0 }

func NewCounter(name, help string) *Counter                        { return &Counter{} }
func NewCounterVec(name, help, label string) *CounterVec           { return &CounterVec{} }
func NewGauge(name, help string) *Gauge                            { return &Gauge{} }
func NewGaugeFunc(name, help string, fn func() float64) *Gauge     { return &Gauge{} }
func NewHistogram(name, help string, buckets []float64) *Histogram { return &Histogram{} }
func NewHistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	return &HistogramVec{}
}

var LatencyBuckets = []float64{0.001, 1}
