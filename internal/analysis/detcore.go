package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DetCore enforces the determinism contract of the computation core.
// Cached immutable regions are validity certificates precisely because
// recomputing an analysis yields bit-identical output (the replication
// and cache property tests assert it); docs/architecture.md and the
// engine godoc argue the invariant. Three things break it silently:
//
//   - ranging over a map where the iteration order can feed score
//     accumulation or result ordering (Go randomizes map order);
//   - wall-clock reads (time.Now and friends) influencing computation;
//   - math/rand anywhere in the core.
//
// The analyzer forbids all three in internal/core, internal/geom and
// internal/topk. Uses that provably cannot affect answers (metrics
// timing, a map range whose elements are fully re-sorted with a total
// order) are deliberate exceptions: suppress with
// //lint:allow detcore <reason>.
var DetCore = &Analyzer{
	Name: "detcore",
	Doc:  "forbid nondeterminism sources (map range order, wall clock, math/rand) in the computation core",
	Run:  runDetCore,
}

// detTimeFuncs are the time package reads that leak wall-clock state
// into a computation.
var detTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDetCore(pass *Pass) error {
	if !pathIsAny(pass.Pkg, "internal/core", "internal/geom", "internal/topk") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				if p, err := strconv.Unquote(n.Path.Value); err == nil {
					if p == "math/rand" || p == "math/rand/v2" {
						pass.Reportf(n.Pos(), "import of %s in a deterministic-core package: region certificates require bit-identical recomputation", p)
					}
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "range over a map: iteration order is randomized and must not feed score accumulation or result ordering")
					}
				}
			case *ast.SelectorExpr:
				obj := pass.TypesInfo.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				if obj.Pkg().Path() == "time" && detTimeFuncs[obj.Name()] {
					if _, isFunc := obj.(*types.Func); isFunc {
						pass.Reportf(n.Pos(), "time.%s in a deterministic-core package: wall-clock reads must not influence computation", obj.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}
