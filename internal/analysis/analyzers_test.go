package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer is exercised against a fixture tree under testdata/src
// holding positive, negative and suppression cases; the harness fails
// on any diagnostic without a // want comment and vice versa, so these
// tests prove each check actually fires (and stays silent) where the
// fixture says.

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.LockSafe, "locksafe/internal/engine")
}

func TestMetered(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.Metered,
		"metered/internal/engine", "metered/internal/core", "metered/internal/shard")
}

func TestErrMap(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.ErrMap,
		"errmap/internal/wal", "errmap/internal/server")
}

func TestTagParity(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.TagParity, "tagparity/internal/vec")
}

func TestDetCore(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.DetCore,
		"detcore/internal/core", "detcore/internal/util")
}

func TestObsReg(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.ObsReg, "obsreg/internal/app")
}
