package analysis

import "testing"

func TestParseAllow(t *testing.T) {
	cases := []struct {
		comment  string
		ok       bool
		analyzer string
		reason   string
	}{
		{"//lint:allow detcore metrics-only timing", true, "detcore", "metrics-only timing"},
		{"// lint:allow errmap identity is intended here", true, "errmap", "identity is intended here"},
		// A reason is mandatory: a silent typo must not silently allow.
		{"//lint:allow detcore", false, "", ""},
		{"//lint:allow detcore   ", false, "", ""},
		{"//lint:allow", false, "", ""},
		{"// regular comment", false, "", ""},
		{"//nolint:detcore", false, "", ""},
	}
	for _, c := range cases {
		sup, ok := parseAllow(c.comment)
		if ok != c.ok {
			t.Errorf("parseAllow(%q) ok = %v, want %v", c.comment, ok, c.ok)
			continue
		}
		if ok && (sup.analyzer != c.analyzer || sup.reason != c.reason) {
			t.Errorf("parseAllow(%q) = %q/%q, want %q/%q", c.comment, sup.analyzer, sup.reason, c.analyzer, c.reason)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range Registry {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of an unknown name should be nil")
	}
}
