package exp

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/lists"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Fig10 — WSJ, k=10, qlen 2..10: evaluated candidates/dim, I/O, CPU and
// memory footprint for Scan/Thres/Prune/CPT (paper Fig. 10a–d).
func (r *Runner) Fig10() Figure {
	d, ix := r.WSJ()
	xs := []float64{2, 4, 6, 8, 10}
	series := r.sweep(ix, xs, func(x float64) ([]vec.Query, int, core.Options) {
		return r.sampleQueries(d, int(x), 10), 10, core.Options{}
	})
	return Figure{
		ID: "fig10", Title: "WSJ corpus, k=10, varying query length",
		XLabel: "qlen", Series: series,
		Notes: "expect: Prune ≪ Scan (singleton candidates dominate); CPT best overall",
	}
}

// Fig11 — ST (correlated), k=10, qlen 2..10: evaluated candidates and
// CPU (paper Fig. 11a–b). Pruning is expected to be ineffective here.
func (r *Runner) Fig11() Figure {
	d, ix := r.ST()
	xs := []float64{2, 4, 6, 8, 10}
	series := r.sweep(ix, xs, func(x float64) ([]vec.Query, int, core.Options) {
		return r.sampleQueries(d, int(x), 10), 10, core.Options{}
	})
	return Figure{
		ID: "fig11", Title: "Synthetic correlated data, k=10, varying query length",
		XLabel: "qlen", Series: series,
		Notes: "expect: Prune ≈ Scan (CL dominates); Thres carries CPT",
	}
}

// Fig12 — KB, k=10, qlen 2..48: evaluated candidates and CPU (paper
// Fig. 12a–b). All three candidate classes are sizable.
func (r *Runner) Fig12() Figure {
	d, ix := r.KB()
	xs := []float64{2, 8, 16, 32, 48}
	series := r.sweep(ix, xs, func(x float64) ([]vec.Query, int, core.Options) {
		return r.sampleQueries(d, int(x), 10), 10, core.Options{}
	})
	return Figure{
		ID: "fig12", Title: "KB image features, k=10, varying query length",
		XLabel: "qlen", Series: series,
		Notes: "expect: both pruning and thresholding effective; CPT best",
	}
}

// Fig13 — WSJ and ST, qlen=4, k 10..80 (paper Fig. 13a–d). Scan degrades
// with k; Prune/Thres/CPT improve or stay flat on WSJ.
func (r *Runner) Fig13() (wsj, st Figure) {
	dw, ixw := r.WSJ()
	xs := []float64{10, 20, 40, 80}
	mkw := func(x float64) ([]vec.Query, int, core.Options) {
		// Constant df floor: rare query terms must stay eligible as k
		// grows, or the Fig. 13 pruning effect disappears (see
		// sampleQueriesDF).
		return r.sampleQueriesDF(dw, 4, int(x), 50), int(x), core.Options{}
	}
	wsj = Figure{
		ID: "fig13-wsj", Title: "WSJ corpus, qlen=4, varying k",
		XLabel: "k", Series: r.sweep(ixw, xs, mkw),
		Notes: "expect: Scan grows with k; Prune/Thres/CPT flat or improving",
	}
	ds, ixs := r.ST()
	mks := func(x float64) ([]vec.Query, int, core.Options) {
		return r.sampleQueries(ds, 4, int(x)), int(x), core.Options{}
	}
	st = Figure{
		ID: "fig13-st", Title: "Synthetic correlated data, qlen=4, varying k",
		XLabel: "k", Series: r.sweep(ixs, xs, mks),
		Notes: "expect: Prune tracks Scan; CPT relies on thresholding",
	}
	return wsj, st
}

// Fig14 — WSJ, k=10, qlen=4, φ 0..40: evaluated candidates, I/O and CPU
// (paper Fig. 14a–c). Scan/Thres degrade with φ much faster than
// Prune/CPT.
func (r *Runner) Fig14() Figure {
	d, ix := r.WSJ()
	xs := []float64{0, 10, 20, 40}
	queries := r.sampleQueries(d, 4, 10)
	series := r.sweep(ix, xs, func(x float64) ([]vec.Query, int, core.Options) {
		return queries, 10, core.Options{Phi: int(x)}
	})
	return Figure{
		ID: "fig14", Title: "WSJ corpus, k=10, qlen=4, varying φ",
		XLabel: "phi", Series: series,
		Notes: "expect: Scan/Thres grow sharply with φ; Prune/CPT nearly flat",
	}
}

// Fig15 — one-off versus iterative processing for φ>0, Prune and CPT
// (paper Fig. 15a–b).
func (r *Runner) Fig15() Figure {
	d, ix := r.WSJ()
	xs := []float64{1, 5, 10, 20, 40}
	queries := r.sampleQueries(d, 4, 10)
	var series []Series
	for _, method := range []core.Method{core.MethodPrune, core.MethodCPT} {
		for _, iterative := range []bool{false, true} {
			label := method.String()
			if iterative {
				label += "-iterative"
			} else {
				label += "-oneoff"
			}
			s := Series{Label: label}
			for _, x := range xs {
				pt := r.measure(ix, queries, 10, core.Options{Method: method, Phi: int(x), Iterative: iterative})
				pt.X = x
				s.Points = append(s.Points, pt)
			}
			series = append(series, s)
		}
	}
	return Figure{
		ID: "fig15", Title: "One-off vs iterative processing, WSJ, k=10, qlen=4",
		XLabel: "phi", Series: series,
		Notes: "expect: iterative cost grows ~linearly in φ relative to one-off",
	}
}

// Fig16 — WSJ, composition-only perturbations (reorderings ignored),
// φ=0, k=10, qlen 2..10 (paper Fig. 16a–c).
func (r *Runner) Fig16() Figure {
	d, ix := r.WSJ()
	xs := []float64{2, 4, 6, 8, 10}
	series := r.sweep(ix, xs, func(x float64) ([]vec.Query, int, core.Options) {
		return r.sampleQueries(d, int(x), 10), 10, core.Options{CompositionOnly: true}
	})
	return Figure{
		ID: "fig16", Title: "WSJ corpus, composition-only perturbations, k=10",
		XLabel: "qlen", Series: series,
		Notes: "expect: same ordering as Fig. 10 with Thres less effective",
	}
}

// ScatterRow is one tuple in the Fig. 6/7 score–coordinate scatter.
type ScatterRow struct {
	Class string  // "result" or "candidate"
	Coord float64 // coordinate on the first query dimension
	Score float64
	NZ    int // non-zero query dimensions (class partition of Fig. 7)
}

// Fig6 — the score-vs-coordinate scatter of result and candidate tuples
// for one qlen=4, k=10 query (paper Fig. 6a on WSJ, 6b on ST).
func (r *Runner) Fig6(useST bool) []ScatterRow {
	var d *dataset.Dataset
	var ix *lists.MemIndex
	if useST {
		d, ix = r.ST()
	} else {
		d, ix = r.WSJ()
	}
	rng := rand.New(rand.NewSource(r.Cfg.Seed + 66))
	q, err := d.SampleQuery(rng, 4, 50)
	if err != nil {
		panic(err)
	}
	// Equal weights, as in the paper's illustration.
	for i := range q.Weights {
		q.Weights[i] = 0.5
	}
	ta := topk.New(ix, q, 10, topk.BestList)
	ta.Run()
	var rows []ScatterRow
	for _, sc := range ta.Result() {
		rows = append(rows, ScatterRow{Class: "result", Coord: sc.Proj[0], Score: sc.Score, NZ: sc.NonZero()})
	}
	for _, sc := range ta.Candidates() {
		rows = append(rows, ScatterRow{Class: "candidate", Coord: sc.Proj[0], Score: sc.Score, NZ: sc.NonZero()})
	}
	return rows
}

// PartitionStats are the per-dimension candidate-class sizes of Fig. 7.
type PartitionStats struct {
	Dataset        string
	C0, CH, CL     float64 // mean class sizes over queries and dimensions
	CandidateTotal float64
}

// Fig7 measures the average candidate partition sizes per query
// dimension on all three datasets (the structure behind Fig. 6/7).
func (r *Runner) Fig7() []PartitionStats {
	var out []PartitionStats
	for _, pick := range []string{"WSJ", "KB", "ST"} {
		var d *dataset.Dataset
		var ix *lists.MemIndex
		switch pick {
		case "WSJ":
			d, ix = r.WSJ()
		case "KB":
			d, ix = r.KB()
		default:
			d, ix = r.ST()
		}
		queries := r.sampleQueries(d, 4, 50)
		ps := PartitionStats{Dataset: pick}
		var dims float64
		for _, q := range queries {
			ta := topk.New(ix, q, 10, topk.BestList)
			ta.Run()
			cands := ta.Candidates()
			ps.CandidateTotal += float64(len(cands))
			for jx := range q.Dims {
				bit := uint64(1) << uint(jx)
				for _, cd := range cands {
					switch {
					case cd.NZMask&bit == 0:
						ps.C0++
					case cd.NZMask == bit:
						ps.CH++
					default:
						ps.CL++
					}
				}
				dims++
			}
		}
		ps.C0 /= dims
		ps.CH /= dims
		ps.CL /= dims
		ps.CandidateTotal /= float64(len(queries))
		out = append(out, ps)
	}
	return out
}

// PhaseCost is one row of the §7.2 phase-cost breakdown.
type PhaseCost struct {
	Method                 string
	Phase1, Phase2, Phase3 time.Duration
	Phase3Pulled           float64
}

// PhaseBreakdown reproduces the §7.2 observation that Phase 2 dominates:
// per-method CPU split across the three phases (WSJ, k=10, qlen=4).
func (r *Runner) PhaseBreakdown() []PhaseCost {
	d, ix := r.WSJ()
	queries := r.sampleQueries(d, 4, 10)
	var out []PhaseCost
	eng := measureEngine(ix)
	for _, method := range core.Methods {
		pc := PhaseCost{Method: method.String()}
		for _, q := range queries {
			res, err := eng.Analyze(context.Background(), q, 10, engine.Options{Options: core.Options{Method: method}})
			if err != nil {
				panic(err)
			}
			pc.Phase1 += res.Metrics.Phase1
			pc.Phase2 += res.Metrics.Phase2
			pc.Phase3 += res.Metrics.Phase3
			pc.Phase3Pulled += float64(res.Metrics.Phase3Pulled)
		}
		n := time.Duration(len(queries))
		pc.Phase1 /= n
		pc.Phase2 /= n
		pc.Phase3 /= n
		pc.Phase3Pulled /= float64(len(queries))
		out = append(out, pc)
	}
	return out
}

// HeadlineRow is the Scan/CPT evaluated-candidate ratio on one workload —
// the paper's abstract claims 2× to >500×.
type HeadlineRow struct {
	Workload string
	Scan     float64
	CPT      float64
	Ratio    float64
}

// Headline computes the Scan-vs-CPT reduction across representative
// workloads (one per dataset plus a large-φ one).
func (r *Runner) Headline() []HeadlineRow {
	type workload struct {
		name string
		ix   lists.Index
		qs   []vec.Query
		k    int
		opts core.Options
	}
	dw, ixw := r.WSJ()
	dk, ixk := r.KB()
	ds, ixs := r.ST()
	wls := []workload{
		{"WSJ qlen=4 k=10", ixw, r.sampleQueries(dw, 4, 10), 10, core.Options{}},
		{"WSJ qlen=10 k=10", ixw, r.sampleQueries(dw, 10, 10), 10, core.Options{}},
		{"WSJ qlen=4 k=10 phi=40", ixw, r.sampleQueries(dw, 4, 10), 10, core.Options{Phi: 40}},
		{"KB qlen=16 k=10", ixk, r.sampleQueries(dk, 16, 10), 10, core.Options{}},
		{"ST qlen=4 k=10", ixs, r.sampleQueries(ds, 4, 10), 10, core.Options{}},
	}
	var out []HeadlineRow
	for _, wl := range wls {
		scanOpts := wl.opts
		scanOpts.Method = core.MethodScan
		cptOpts := wl.opts
		cptOpts.Method = core.MethodCPT
		scan := r.measure(wl.ix, wl.qs, wl.k, scanOpts)
		cpt := r.measure(wl.ix, wl.qs, wl.k, cptOpts)
		row := HeadlineRow{Workload: wl.name, Scan: scan.Evaluated, CPT: cpt.Evaluated}
		if cpt.Evaluated > 0 {
			row.Ratio = scan.Evaluated / cpt.Evaluated
		}
		out = append(out, row)
	}
	return out
}

// STBComparison contrasts immutable regions with the STB radius on one
// workload: candidates examined and what each output offers (§2).
type STBComparison struct {
	Queries         int
	STBScanned      float64 // tuples STB examines (all non-result)
	CPTEvaluated    float64 // candidates CPT evaluates per query
	MeanRho         float64
	MeanMinIRExtent float64 // min axis bound magnitude, comparable to rho
}

// STB runs the Soliman-et-al. sensitivity radius next to CPT on a small
// WSJ workload. STB must scan every non-result tuple; CPT touches a
// handful — the §2 positioning, quantified. (Uses the raw tuple set: STB
// has no index support.)
func (r *Runner) STB() STBComparison {
	d, ix := r.WSJ()
	queries := r.sampleQueries(d, 4, 10)
	if len(queries) > 10 {
		queries = queries[:10] // STB is O(n) per query; keep this modest
	}
	eng := measureEngine(ix)
	out := STBComparison{Queries: len(queries)}
	for _, q := range queries {
		res := stbRadius(d, q, 10)
		out.STBScanned += float64(res.scanned)
		out.MeanRho += res.rho

		cptOut, err := eng.Analyze(context.Background(), q, 10, engine.Options{Options: core.Options{Method: core.MethodCPT}})
		if err != nil {
			panic(err)
		}
		out.CPTEvaluated += float64(cptOut.Metrics.Evaluated)
		// Minimal perturbation-backed extent; domain-edge bounds are
		// excluded (ρ ignores the [0,1] weight domain, so only bounds
		// caused by an actual perturbation are comparable to it).
		minExtent := 1.0
		for _, reg := range cptOut.Regions {
			if len(reg.Left) > 0 && -reg.Lo < minExtent {
				minExtent = -reg.Lo
			}
			if len(reg.Right) > 0 && reg.Hi < minExtent {
				minExtent = reg.Hi
			}
		}
		out.MeanMinIRExtent += minExtent
	}
	n := float64(len(queries))
	out.STBScanned /= n
	out.CPTEvaluated /= n
	out.MeanRho /= n
	out.MeanMinIRExtent /= n
	return out
}

// WriteCSV emits the figure's series as CSV.
func (f Figure) WriteCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "method,%s,evaluated_per_dim,io_ms,cpu_ms,mem_bytes,seq_pages,rand_reads\n", f.XLabel)
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(w, "%s,%g,%.2f,%.3f,%.3f,%.0f,%.1f,%.1f\n",
				s.Label, p.X, p.Evaluated,
				float64(p.IO)/1e6, float64(p.CPU)/1e6, p.MemBytes, p.SeqPages, p.RandReads)
		}
	}
}

// WriteTable renders the figure as aligned text, one block per metric,
// mirroring the paper's chart panels.
func (f Figure) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", f.ID, f.Title)
	if f.Notes != "" {
		fmt.Fprintf(w, "   (%s)\n", f.Notes)
	}
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	metric := func(name string, get func(Point) float64, format string) {
		fmt.Fprintf(w, "-- %s --\n", name)
		fmt.Fprintf(w, "%-16s", f.XLabel+" \\ method")
		for _, s := range f.Series {
			fmt.Fprintf(w, "%14s", s.Label)
		}
		fmt.Fprintln(w)
		for _, x := range xs {
			fmt.Fprintf(w, "%-16g", x)
			for _, s := range f.Series {
				found := false
				for _, p := range s.Points {
					if p.X == x {
						fmt.Fprintf(w, format, get(p))
						found = true
						break
					}
				}
				if !found {
					fmt.Fprintf(w, "%14s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	metric("evaluated candidates / dimension", func(p Point) float64 { return p.Evaluated }, "%14.1f")
	metric("modeled I/O time (ms)", func(p Point) float64 { return float64(p.IO) / 1e6 }, "%14.2f")
	metric("CPU time (ms)", func(p Point) float64 { return float64(p.CPU) / 1e6 }, "%14.3f")
	metric("memory footprint (KiB)", func(p Point) float64 { return p.MemBytes / 1024 }, "%14.1f")
	fmt.Fprintln(w)
}
