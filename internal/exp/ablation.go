package exp

import (
	"time"

	"repro/internal/core"
	"repro/internal/topk"
)

// AblationRow is one line of the design-choice comparison tables.
type AblationRow struct {
	Name           string
	SortedAccesses float64
	RandReads      float64
	CPU            time.Duration
	Evaluated      float64
}

// AblationProbing compares TA under round-robin vs Persin best-list
// probing, and the no-random-access variant (NRA), on the same WSJ
// workload — the substrate choices §2 and §7.1 discuss.
func (r *Runner) AblationProbing() []AblationRow {
	d, ix := r.WSJ()
	queries := r.sampleQueries(d, 4, 10)
	var rows []AblationRow

	for _, policy := range []topk.ProbePolicy{topk.RoundRobin, topk.BestList} {
		row := AblationRow{Name: "TA/" + policy.String()}
		for _, q := range queries {
			r0 := ix.Stats().RandReads()
			t0 := time.Now()
			ta := topk.New(ix, q, 10, policy)
			ta.Run()
			row.CPU += time.Since(t0)
			row.SortedAccesses += float64(ta.SortedAccesses())
			row.RandReads += float64(ix.Stats().RandReads() - r0)
		}
		n := float64(len(queries))
		row.SortedAccesses /= n
		row.RandReads /= n
		row.CPU = time.Duration(float64(row.CPU) / n)
		rows = append(rows, row)
	}

	nraRow := AblationRow{Name: "NRA"}
	for _, q := range queries {
		t0 := time.Now()
		nra := topk.NewNRA(ix, q, 10)
		nra.Run()
		nraRow.CPU += time.Since(t0)
		nraRow.SortedAccesses += float64(nra.SortedAccesses())
	}
	n := float64(len(queries))
	nraRow.SortedAccesses /= n
	nraRow.CPU = time.Duration(float64(nraRow.CPU) / n)
	rows = append(rows, nraRow)
	return rows
}

// AblationSchedule compares the thresholding probe schedules of §5.2
// (round-robin won in the paper; both are measured here) under CPT on
// the KB workload where thresholding does the heavy lifting.
func (r *Runner) AblationSchedule() []AblationRow {
	d, ix := r.KB()
	queries := r.sampleQueries(d, 8, 10)
	var rows []AblationRow
	for _, sched := range []core.Schedule{core.ScheduleRoundRobin, core.ScheduleScoreBiased} {
		pt := r.measure(ix, queries, 10, core.Options{Method: core.MethodCPT, Schedule: sched})
		rows = append(rows, AblationRow{
			Name:      "CPT/" + sched.String(),
			Evaluated: pt.Evaluated,
			RandReads: pt.RandReads,
			CPU:       pt.CPU,
		})
	}
	return rows
}
