package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// tinyRunner keeps smoke tests fast: small datasets, 2 queries. The
// scale stays above the point where the WSJ corpus would leave its
// sparse co-occurrence regime.
func tinyRunner() *Runner {
	return NewRunner(Config{Queries: 2, Scale: 0.15, Seed: 1})
}

func checkFigure(t *testing.T, f Figure, wantSeries int) {
	t.Helper()
	if len(f.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", f.ID, len(f.Series), wantSeries)
	}
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			t.Fatalf("%s/%s: no points", f.ID, s.Label)
		}
		for _, p := range s.Points {
			if p.Evaluated < 0 || p.CPU < 0 || p.IO < 0 {
				t.Fatalf("%s/%s: negative metric %+v", f.ID, s.Label, p)
			}
		}
	}
}

// seriesByLabel returns the series with the given label.
func seriesByLabel(t *testing.T, f Figure, label string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("%s: no series %q", f.ID, label)
	return Series{}
}

func TestFig10Smoke(t *testing.T) {
	f := tinyRunner().Fig10()
	checkFigure(t, f, 4)
	scan := seriesByLabel(t, f, "Scan")
	cpt := seriesByLabel(t, f, "CPT")
	for i := range scan.Points {
		if cpt.Points[i].Evaluated > scan.Points[i].Evaluated {
			t.Errorf("qlen=%v: CPT evaluated %v > Scan %v",
				scan.Points[i].X, cpt.Points[i].Evaluated, scan.Points[i].Evaluated)
		}
	}
}

func TestFig11Smoke(t *testing.T) {
	r := NewRunner(Config{Queries: 2, Scale: 0.05, Seed: 3})
	d, ix := r.ST()
	queries := r.sampleQueries(d, 3, 5)
	scan := r.measure(ix, queries, 5, core.Options{Method: core.MethodScan})
	prune := r.measure(ix, queries, 5, core.Options{Method: core.MethodPrune})
	// On fully correlated dense data C0/CH are empty: pruning must be a
	// no-op, evaluating exactly what Scan evaluates (paper Fig. 11).
	if prune.Evaluated != scan.Evaluated {
		t.Errorf("ST: Prune evaluated %v != Scan %v; pruning should be inert", prune.Evaluated, scan.Evaluated)
	}
	thres := r.measure(ix, queries, 5, core.Options{Method: core.MethodThres})
	if thres.Evaluated >= scan.Evaluated {
		t.Errorf("ST: Thres evaluated %v >= Scan %v; thresholding should bite", thres.Evaluated, scan.Evaluated)
	}
}

func TestFig12Smoke(t *testing.T) {
	r := tinyRunner()
	d, ix := r.KB()
	queries := r.sampleQueries(d, 6, 5)
	scan := r.measure(ix, queries, 5, core.Options{Method: core.MethodScan})
	cpt := r.measure(ix, queries, 5, core.Options{Method: core.MethodCPT})
	if cpt.Evaluated > scan.Evaluated {
		t.Errorf("KB: CPT evaluated %v > Scan %v", cpt.Evaluated, scan.Evaluated)
	}
}

func TestFig16Smoke(t *testing.T) {
	r := tinyRunner()
	d, ix := r.WSJ()
	queries := r.sampleQueries(d, 3, 5)
	for _, method := range core.Methods {
		normal := r.measure(ix, queries, 5, core.Options{Method: method})
		comp := r.measure(ix, queries, 5, core.Options{Method: method, CompositionOnly: true})
		// Composition-only regions are at least as wide, so the work can
		// only grow or stay similar; the key invariant is that both
		// complete and meter sanely.
		if comp.Evaluated < 0 || normal.Evaluated < 0 {
			t.Fatalf("%v: negative evaluation counts", method)
		}
	}
}

func TestFig14Smoke(t *testing.T) {
	r := tinyRunner()
	d, ix := r.WSJ()
	queries := r.sampleQueries(d, 3, 5)
	for _, phi := range []int{0, 3} {
		scan := r.measure(ix, queries, 5, core.Options{Method: core.MethodScan, Phi: phi})
		cpt := r.measure(ix, queries, 5, core.Options{Method: core.MethodCPT, Phi: phi})
		if cpt.Evaluated > scan.Evaluated {
			t.Errorf("phi=%d: CPT evaluated %v > Scan %v", phi, cpt.Evaluated, scan.Evaluated)
		}
	}
}

func TestFig15Smoke(t *testing.T) {
	r := NewRunner(Config{Queries: 1, Scale: 0.05, Seed: 2})
	d, ix := r.WSJ()
	queries := r.sampleQueries(d, 3, 5)
	oneoff := r.measure(ix, queries, 5, core.Options{Method: core.MethodCPT, Phi: 4})
	iter := r.measure(ix, queries, 5, core.Options{Method: core.MethodCPT, Phi: 4, Iterative: true})
	if iter.Evaluated < oneoff.Evaluated {
		t.Errorf("iterative evaluated %v < one-off %v; iteration should cost more", iter.Evaluated, oneoff.Evaluated)
	}
}

func TestFig6Scatter(t *testing.T) {
	r := tinyRunner()
	for _, useST := range []bool{false, true} {
		rows := r.Fig6(useST)
		results, cands := 0, 0
		for _, row := range rows {
			switch row.Class {
			case "result":
				results++
			case "candidate":
				cands++
			default:
				t.Fatalf("unknown class %q", row.Class)
			}
			if row.Score < 0 || row.Coord < 0 || row.Coord > 1 {
				t.Fatalf("implausible row %+v", row)
			}
		}
		if results == 0 || cands == 0 {
			t.Fatalf("useST=%v: %d results, %d candidates", useST, results, cands)
		}
	}
}

func TestFig7Partitions(t *testing.T) {
	stats := tinyRunner().Fig7()
	if len(stats) != 3 {
		t.Fatalf("%d partition rows", len(stats))
	}
	for _, ps := range stats {
		total := ps.C0 + ps.CH + ps.CL
		if ps.CandidateTotal > 0 && total == 0 {
			t.Errorf("%s: candidates exist but partitions empty", ps.Dataset)
		}
		// Every candidate falls in exactly one class per dimension.
		if ps.CandidateTotal > 0 && (total < ps.CandidateTotal*0.99 || total > ps.CandidateTotal*1.01) {
			t.Errorf("%s: classes sum to %v per dim, want ≈ total %v", ps.Dataset, total, ps.CandidateTotal)
		}
	}
	// The structural contrast the paper draws: singles dominate WSJ,
	// multis dominate ST.
	var wsj, st PartitionStats
	for _, ps := range stats {
		if ps.Dataset == "WSJ" {
			wsj = ps
		}
		if ps.Dataset == "ST" {
			st = ps
		}
	}
	if wsj.CL > wsj.C0+wsj.CH {
		t.Errorf("WSJ: CL=%v dominates C0+CH=%v; want the opposite", wsj.CL, wsj.C0+wsj.CH)
	}
	if st.CandidateTotal > 0 && st.CL < st.CH {
		t.Errorf("ST: CL=%v < CH=%v; want CL to dominate", st.CL, st.CH)
	}
}

func TestPhaseBreakdown(t *testing.T) {
	rows := tinyRunner().PhaseBreakdown()
	if len(rows) != 4 {
		t.Fatalf("%d phase rows", len(rows))
	}
	for _, pc := range rows {
		if pc.Phase1 < 0 || pc.Phase2 < 0 || pc.Phase3 < 0 {
			t.Errorf("%s: negative phase time", pc.Method)
		}
	}
}

func TestHeadline(t *testing.T) {
	rows := tinyRunner().Headline()
	if len(rows) == 0 {
		t.Fatal("no headline rows")
	}
	for _, row := range rows {
		if row.CPT > row.Scan {
			t.Errorf("%s: CPT %v > Scan %v", row.Workload, row.CPT, row.Scan)
		}
		if row.Scan > 0 && row.Ratio < 1 {
			t.Errorf("%s: ratio %v < 1", row.Workload, row.Ratio)
		}
	}
}

func TestSTBComparison(t *testing.T) {
	r := tinyRunner()
	cmp := r.STB()
	if cmp.Queries == 0 {
		t.Fatal("no queries")
	}
	d, _ := r.WSJ()
	wantScan := float64(d.N() - 10)
	if cmp.STBScanned != wantScan {
		t.Errorf("STB scanned %v, want all %v non-result tuples", cmp.STBScanned, wantScan)
	}
	if cmp.CPTEvaluated >= cmp.STBScanned {
		t.Errorf("CPT evaluated %v >= STB scan %v", cmp.CPTEvaluated, cmp.STBScanned)
	}
	// ρ must not exceed the smallest axis-parallel region extent: the
	// region endpoints lie on constraint hyperplanes, so the minimal
	// hyperplane distance is a lower bound on neither — but the minimal
	// axis extent is an upper bound on ρ along that axis direction.
	if cmp.MeanRho > cmp.MeanMinIRExtent+1e-9 {
		t.Errorf("mean rho %v exceeds mean min IR extent %v", cmp.MeanRho, cmp.MeanMinIRExtent)
	}
}

func TestAblations(t *testing.T) {
	r := tinyRunner()
	probing := r.AblationProbing()
	if len(probing) != 3 {
		t.Fatalf("%d probing rows", len(probing))
	}
	var ta, nra AblationRow
	for _, row := range probing {
		if row.Name == "TA/best-list" {
			ta = row
		}
		if row.Name == "NRA" {
			nra = row
		}
	}
	if nra.RandReads != 0 {
		t.Errorf("NRA performed %v random reads", nra.RandReads)
	}
	if nra.SortedAccesses < ta.SortedAccesses {
		t.Errorf("NRA sorted accesses %v < TA %v", nra.SortedAccesses, ta.SortedAccesses)
	}
	sched := r.AblationSchedule()
	if len(sched) != 2 {
		t.Fatalf("%d schedule rows", len(sched))
	}
	for _, row := range sched {
		if row.Evaluated <= 0 {
			t.Errorf("%s evaluated %v", row.Name, row.Evaluated)
		}
	}
}

func TestFigureWriters(t *testing.T) {
	f := tinyRunner().Fig10()
	var tbl, csv bytes.Buffer
	f.WriteTable(&tbl)
	f.WriteCSV(&csv)
	if !strings.Contains(tbl.String(), "evaluated candidates / dimension") {
		t.Error("table missing metric header")
	}
	if !strings.Contains(csv.String(), "method,qlen") {
		t.Error("csv missing header")
	}
	lines := strings.Count(csv.String(), "\n")
	if lines < 4*5 {
		t.Errorf("csv has %d lines, want >= 20", lines)
	}
}
