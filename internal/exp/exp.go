// Package exp is the benchmark harness: one runner per table/figure of
// the paper's evaluation (§7), each printing the same series the paper
// plots. Absolute numbers differ from the 2012 testbed (see DESIGN.md);
// the shapes — which method wins, by what factor, where trends bend —
// are the reproduction target recorded in EXPERIMENTS.md.
package exp

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/lists"
	"repro/internal/storage"
	"repro/internal/vec"
)

// Config controls harness-wide parameters.
type Config struct {
	// Queries per measurement point (the paper averages 100).
	Queries int
	// Scale multiplies dataset cardinalities; 1.0 is the laptop default,
	// ≈20 approaches paper scale.
	Scale float64
	// Seed makes query sampling and generators deterministic.
	Seed int64
	// Disk is the I/O cost model used to convert counted I/Os to time.
	Disk storage.DiskModel
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.Queries == 0 {
		c.Queries = 20
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Disk == (storage.DiskModel{}) {
		c.Disk = storage.DefaultDiskModel
	}
	return c
}

// Point is one measurement: the method's averages at one x position.
type Point struct {
	X         float64
	Evaluated float64 // evaluated candidates per query dimension
	IO        time.Duration
	CPU       time.Duration
	MemBytes  float64
	SeqPages  float64
	RandReads float64
}

// Series is one method's line across the x axis.
type Series struct {
	Label  string
	Points []Point
}

// Figure is one reproduced chart.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Series []Series
	// Notes carries reproduction caveats shown alongside the data.
	Notes string
}

// Runner caches generated datasets across figures.
type Runner struct {
	Cfg Config

	wsj, kb, st *dataset.Dataset
	wsjIx       *lists.MemIndex
	kbIx        *lists.MemIndex
	stIx        *lists.MemIndex
}

// NewRunner prepares a harness with the given config.
func NewRunner(cfg Config) *Runner { return &Runner{Cfg: cfg.Defaults()} }

func scale(base int, s float64) int {
	n := int(float64(base) * s)
	if n < 100 {
		n = 100
	}
	return n
}

// WSJ returns the (cached) WSJ-like corpus and its index. Terms per
// document scale with the vocabulary so that term co-occurrence stays in
// the sparse regime of the real corpus at every Scale (the property the
// pruning results depend on).
func (r *Runner) WSJ() (*dataset.Dataset, *lists.MemIndex) {
	if r.wsj == nil {
		vocab := scale(12000, r.Cfg.Scale)
		meanTerms := vocab / 200
		if meanTerms < 6 {
			meanTerms = 6
		}
		if meanTerms > 60 {
			meanTerms = 60
		}
		r.wsj = dataset.GenerateWSJ(dataset.WSJConfig{
			Docs:      scale(8000, r.Cfg.Scale),
			Vocab:     vocab,
			MeanTerms: meanTerms,
			Seed:      r.Cfg.Seed + 1,
		})
		r.wsjIx = r.wsj.Index()
	}
	return r.wsj, r.wsjIx
}

// KB returns the (cached) KB-like feature set and its index.
func (r *Runner) KB() (*dataset.Dataset, *lists.MemIndex) {
	if r.kb == nil {
		r.kb = dataset.GenerateKB(dataset.KBConfig{
			Images:   scale(8000, r.Cfg.Scale),
			Features: scale(1200, r.Cfg.Scale),
			Seed:     r.Cfg.Seed + 2,
		})
		r.kbIx = r.kb.Index()
	}
	return r.kb, r.kbIx
}

// ST returns the (cached) correlated synthetic dataset and its index.
func (r *Runner) ST() (*dataset.Dataset, *lists.MemIndex) {
	if r.st == nil {
		r.st = dataset.GenerateST(dataset.STConfig{
			N:    scale(50000, r.Cfg.Scale),
			Seed: r.Cfg.Seed + 3,
		})
		r.stIx = r.st.Index()
	}
	return r.st, r.stIx
}

// sampleQueries draws the per-point query workload; the same workload is
// replayed for every method so comparisons are paired.
func (r *Runner) sampleQueries(d *dataset.Dataset, qlen, k int) []vec.Query {
	return r.sampleQueriesDF(d, qlen, k, 3*k+20)
}

// sampleQueriesDF is sampleQueries with an explicit document-frequency
// floor. Fig. 13 keeps the floor constant while k grows: rare terms must
// stay eligible for the paper's "Prune improves with k" effect (a larger
// result absorbs a rare term's entire list, emptying CH_j).
func (r *Runner) sampleQueriesDF(d *dataset.Dataset, qlen, k, minDF int) []vec.Query {
	rng := rand.New(rand.NewSource(r.Cfg.Seed + int64(qlen)*1009 + int64(k)*9176))
	queries := make([]vec.Query, 0, r.Cfg.Queries)
	for len(queries) < r.Cfg.Queries {
		q, err := d.SampleQuery(rng, qlen, minDF)
		if err != nil {
			// Degrade the df requirement rather than fail on tiny scales.
			minDF /= 2
			if minDF == 0 {
				panic(fmt.Sprintf("exp: cannot sample qlen=%d queries on %s", qlen, d.Name))
			}
			continue
		}
		queries = append(queries, q)
	}
	return queries
}

// measureEngine wraps an index in the unified execution layer with the
// answer cache off and no admission gate: the harness measures the
// algorithms themselves, so a cached answer must never stand in for a
// computation.
func measureEngine(ix lists.Index) *engine.Engine {
	return engine.New(ix, engine.Config{MaxConcurrent: -1, CacheEntries: -1})
}

// measure runs one method over the query workload and averages metrics.
// Metrics cover the region computation only (the TA cost is common to
// all methods and excluded, as the paper's Phase-2-centric charts do).
func (r *Runner) measure(ix lists.Index, queries []vec.Query, k int, opts core.Options) Point {
	var p Point
	eng := measureEngine(ix)
	for _, q := range queries {
		out, err := eng.Analyze(context.Background(), q, k, engine.Options{Options: opts})
		if err != nil {
			panic(fmt.Sprintf("exp: compute: %v", err))
		}
		m := out.Metrics
		p.Evaluated += m.EvaluatedPerDimAvg()
		p.CPU += m.CPU()
		p.IO += r.Cfg.Disk.Time(m.SeqPages, m.RandReads)
		p.MemBytes += float64(m.MemBytes)
		p.SeqPages += float64(m.SeqPages)
		p.RandReads += float64(m.RandReads)
	}
	n := float64(len(queries))
	p.Evaluated /= n
	p.CPU = time.Duration(float64(p.CPU) / n)
	p.IO = time.Duration(float64(p.IO) / n)
	p.MemBytes /= n
	p.SeqPages /= n
	p.RandReads /= n
	return p
}

// sweep runs all four methods across xs, building one Series per method.
func (r *Runner) sweep(ix lists.Index, xs []float64, mk func(x float64) ([]vec.Query, int, core.Options)) []Series {
	series := make([]Series, len(core.Methods))
	for mi, method := range core.Methods {
		series[mi].Label = method.String()
	}
	for _, x := range xs {
		queries, k, opts := mk(x)
		for mi, method := range core.Methods {
			o := opts
			o.Method = method
			pt := r.measure(ix, queries, k, o)
			pt.X = x
			series[mi].Points = append(series[mi].Points, pt)
		}
	}
	return series
}
