package exp

import (
	"repro/internal/dataset"
	"repro/internal/stb"
	"repro/internal/vec"
)

type stbResult struct {
	rho     float64
	scanned int
}

// stbRadius adapts the stb package to the harness types.
func stbRadius(d *dataset.Dataset, q vec.Query, k int) stbResult {
	res := stb.Radius(d.Tuples, q, k)
	return stbResult{rho: res.Rho, scanned: res.Scanned}
}
