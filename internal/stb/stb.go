// Package stb implements the sensitivity measure the paper positions
// itself against (§2, Fig. 3): the STB side-problem of Soliman et al.
// ("Ranking with uncertain scoring functions", SIGMOD 2011). Given query
// vector q and the ranked top-k result, every ordering constraint — each
// consecutive result pair, and the k-th result tuple against every
// non-result tuple — defines a half-space of the query-weight subspace
// in which the constraint holds; its boundary hyperplane passes through
// the origin with normal (dα − dβ) projected on the query dimensions.
// The radius ρ is the minimum distance from q to any of these
// hyperplanes: within the ball B(q, ρ) the ranked result is preserved.
//
// As the paper notes, STB must scan all non-result tuples (like the Scan
// baseline), and moving q outside the ball does not say what the result
// becomes — the two shortcomings immutable regions address. The package
// exists as the comparator for those claims.
package stb

import (
	"math"

	"repro/internal/geom"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Constraint names the pair of tuples whose ordering binds the radius.
type Constraint struct {
	Above, Below int
	Distance     float64
}

// Result is the STB sensitivity analysis of one query.
type Result struct {
	Rho     float64
	Binding Constraint // the constraint at distance Rho
	Scanned int        // non-result tuples examined (always all of them)
}

// Radius computes ρ for the ranked top-k of q over tuples by brute-force
// scan, the method's inherent cost profile.
func Radius(tuples []vec.Sparse, q vec.Query, k int) Result {
	ranked := topk.TopKNaive(tuples, q, len(tuples))
	if k > len(ranked) {
		k = len(ranked)
	}
	qw := q.Weights
	res := Result{Rho: math.Inf(1)}

	consider := func(above, below topk.Scored) {
		h := geom.Hyperplane{N: diff(above.Proj, below.Proj), C: 0}
		d := h.Distance(qw)
		if d < res.Rho {
			res.Rho = d
			res.Binding = Constraint{Above: above.ID, Below: below.ID, Distance: d}
		}
	}

	// Ordering within the result.
	for a := 0; a+1 < k; a++ {
		consider(ranked[a], ranked[a+1])
	}
	// The k-th result tuple against every non-result tuple.
	dk := ranked[k-1]
	for _, cand := range ranked[k:] {
		consider(dk, cand)
		res.Scanned++
	}
	return res
}

// PreservedAt reports whether the ranked top-k at weight vector w (given
// as weights parallel to q.Dims) equals the ranked top-k at q — the
// check used to validate the ball empirically.
func PreservedAt(tuples []vec.Sparse, q vec.Query, k int, w []float64) bool {
	q2 := q.Clone()
	copy(q2.Weights, w)
	a := topk.TopKNaive(tuples, q, k)
	b := topk.TopKNaive(tuples, q2, k)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

func diff(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
