package stb

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fixture"
)

// TestRadiusBallPreserves: sampled weight vectors strictly inside the
// ball B(q, ρ) must preserve the ranked result; the binding constraint's
// hyperplane must sit exactly at distance ρ.
func TestRadiusBallPreserves(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		cs := fixture.RandCase(rng, 40+rng.Intn(40), 5, 3, 1+rng.Intn(4))
		res := Radius(cs.Tuples, cs.Q, cs.K)
		if math.IsInf(res.Rho, 1) {
			continue // no competing tuple: nothing to check
		}
		if res.Rho < 0 {
			t.Fatalf("trial %d: negative radius %v", trial, res.Rho)
		}
		if res.Scanned != len(cs.Tuples)-cs.K {
			t.Fatalf("trial %d: scanned %d, want all %d non-result tuples", trial, res.Scanned, len(cs.Tuples)-cs.K)
		}
		// Random directions, 90% of the radius: result must be preserved.
		for s := 0; s < 20; s++ {
			dir := make([]float64, cs.Q.Len())
			norm := 0.0
			for i := range dir {
				dir[i] = rng.NormFloat64()
				norm += dir[i] * dir[i]
			}
			norm = math.Sqrt(norm)
			w := make([]float64, cs.Q.Len())
			ok := true
			for i := range w {
				w[i] = cs.Q.Weights[i] + 0.9*res.Rho*dir[i]/norm
				if w[i] <= 0 || w[i] > 1 {
					ok = false // outside the weight domain; skip sample
				}
			}
			if !ok {
				continue
			}
			if !PreservedAt(cs.Tuples, cs.Q, cs.K, w) {
				t.Fatalf("trial %d: result changed inside the ball (ρ=%v)", trial, res.Rho)
			}
		}
	}
}

// TestRadiusTightness: stepping distance ρ·(1+ε) along the binding
// constraint's normal must flip that constraint.
func TestRadiusTightness(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	found := 0
	for trial := 0; trial < 30 && found < 10; trial++ {
		cs := fixture.RandCase(rng, 60, 5, 3, 3)
		res := Radius(cs.Tuples, cs.Q, cs.K)
		if math.IsInf(res.Rho, 1) || res.Rho == 0 {
			continue
		}
		// Reconstruct the binding normal from the named tuples.
		above := cs.Q.Project(cs.Tuples[res.Binding.Above])
		below := cs.Q.Project(cs.Tuples[res.Binding.Below])
		n := diff(above, below)
		norm := 0.0
		sign := 0.0
		for i := range n {
			norm += n[i] * n[i]
			sign += n[i] * cs.Q.Weights[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		step := -1.001 * res.Rho / norm // move against the constraint
		if sign < 0 {
			step = -step
		}
		w := make([]float64, cs.Q.Len())
		valid := true
		for i := range w {
			w[i] = cs.Q.Weights[i] + step*n[i]
			if w[i] < 0 || w[i] > 1 {
				valid = false
			}
		}
		if !valid {
			continue
		}
		found++
		if PreservedAt(cs.Tuples, cs.Q, cs.K, w) {
			t.Fatalf("trial %d: result preserved just past ρ=%v along binding normal", trial, res.Rho)
		}
	}
	if found == 0 {
		t.Skip("no in-domain binding direction sampled")
	}
}

// TestRunningExampleRadius: ρ on Fig. 1 must be positive, finite, and no
// larger than the smallest distance implied by the immutable regions
// (each region endpoint is an axis-parallel point on some constraint
// hyperplane, so ρ ≤ min endpoint magnitude).
func TestRunningExampleRadius(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	res := Radius(tuples, q, k)
	if math.IsInf(res.Rho, 1) || res.Rho <= 0 {
		t.Fatalf("rho = %v", res.Rho)
	}
	// Axis-parallel bound magnitudes from Fig. 1: 16/35, 0.1, 1/18, 0.5.
	minAxis := 1.0 / 18
	if res.Rho > minAxis {
		t.Fatalf("rho = %v exceeds the smallest axis-parallel bound %v", res.Rho, minAxis)
	}
}
