# Tier-1 verification and day-to-day targets. `make ci` is the one
# command the verify loop runs: build, vet, tests, race tests.

GO ?= go

# Build identity, stamped into the binaries (irserver -version, the
# /stats build block, the ir_build_info metric). Harmless defaults
# ("dev"/"unknown") apply to a plain `go build`.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
LDFLAGS := -X repro/internal/obs.Version=$(VERSION) -X repro/internal/obs.Commit=$(COMMIT)

.PHONY: all build test race vet lint fuzz-smoke vuln bench-smoke bench-compare test-fallback test-wal test-replication test-failover test-obs test-shard check-docs ci

all: ci

build:
	$(GO) build -ldflags '$(LDFLAGS)' ./...

# -short keeps the long randomized soaks (failover chaos trials) out of
# the tier-1 fast path; make test-failover runs them in full.
test:
	$(GO) test -short ./...

race:
	$(GO) test -short -race ./...

vet:
	$(GO) vet ./...

# Invariant lint: the repo-specific analyzers of internal/analysis
# (lock ordering, per-query metering, sentinel-error discipline,
# build-tag surface parity, core determinism — see
# docs/static-analysis.md) over the whole tree. Any unsuppressed
# finding fails; `vet` above carries the stock suite (copylocks,
# lostcancel, printf, ...).
lint:
	$(GO) run ./cmd/irlint ./...

# 10-second native-fuzz budget per target: the WAL frame decoder, the
# crash-recovery scanner and the query validation gate. The committed
# seed corpora under testdata/fuzz replay in every plain `go test`.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRecord -fuzztime=10s ./internal/wal
	$(GO) test -run='^$$' -fuzz=FuzzReplay -fuzztime=10s ./internal/wal
	$(GO) test -run='^$$' -fuzz=FuzzValidateQuery -fuzztime=10s ./internal/engine

# Known-vulnerability report, never a gate: runs where the govulncheck
# binary exists and prints a skip note where it does not (the build
# container does not ship it, and the module graph pins to stdlib).
vuln:
	-@command -v govulncheck >/dev/null 2>&1 && govulncheck ./... || echo "vuln: govulncheck not installed; skipping (report-only)"

# A fast benchmark pass over the analyze path: enough to catch gross
# regressions without the full figure sweep of cmd/irbench.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig10|BenchmarkParallelCompute|BenchmarkServerAnalyzeParallel' \
		-benchmem -benchtime=200ms .

# Per-figure wall-time medians (fig10/fig12) against the committed PR
# baseline, benchstat-style. A report, not a gate: the leading dash
# keeps a slow machine or a regression from failing the build, and CI
# runs it with continue-on-error for the same reason.
bench-compare:
	-$(GO) run ./cmd/irbench -fig fig10,fig12 -queries 5 -benchreps 3 \
		-json /tmp/irbench_head.json -baseline BENCH_7.json

# Fallback portability: the scalar kernels (noasm) and the pread-backed
# pager (nommap) must produce the same answers as the default build —
# the kernel property tests pin bit-identity against the reference
# implementation, and the engine/topk suites re-run their oracles.
# The cross-build proves the fallback matrix compiles on amd64 too.
test-fallback:
	$(GO) test -tags=noasm,nommap ./internal/storage/... ./internal/vec/... ./internal/topk/... ./internal/engine/...
	GOARCH=amd64 $(GO) build -tags=noasm,nommap ./...

# Durability focus: the WAL package under -race, the crash-recovery and
# checkpoint property tests, and a bench smoke so the fsync overhead of
# the write path stays tracked.
test-wal:
	$(GO) test -race ./internal/wal/...
	$(GO) test -race -run 'TestDurable|TestCheckpoint|TestStatsDurable' ./internal/engine/... ./internal/server/...
	$(GO) test -run '^$$' -bench 'BenchmarkApplyWAL' -benchmem -benchtime=50ms ./internal/engine/

# Replication focus: the shipping/follower package under -race (stream,
# resume, snapshot-fallback and quorum property tests), the engine-side
# hooks, and the standby HTTP posture.
test-replication:
	$(GO) test -race ./internal/replication/...
	$(GO) test -race -run 'TestCommit|TestApplyReplicated|TestCheckpointEventSink|TestOpenDirManifestMoved' ./internal/engine/
	$(GO) test -race -run 'TestStandbyHTTP|TestNilEngine' ./internal/server/

# Failover focus: the chaos property suite under -race with a full
# 50-trial soak (each trial kills/restarts members at random while a
# client hammers writes, then proves the healed topology bit-identical
# to a single-node oracle), the deposed-primary regression, the
# coordinator internals, and the routing client/proxy unit tests.
test-failover:
	FAILOVER_SOAK_TRIALS=50 $(GO) test -race -run 'TestClusterFailover|TestDeposedPrimary|TestFailoverChaos' -timeout 20m ./internal/replication/
	$(GO) test -race -run 'TestBackoffJitter|TestHeartbeatAge|TestQuorumPartitioned|TestHandshakeFences' ./internal/replication/
	$(GO) test -race -run 'TestFence|TestAdvanceEpoch|TestAdoptEpoch' ./internal/engine/
	$(GO) test -race ./internal/client/

# Observability focus: the obs package (registry, exposition, request
# IDs, slow log) under -race plus the server-side conformance and
# propagation suites.
test-obs:
	$(GO) test -race ./internal/obs/...
	$(GO) test -race -run 'TestProxy|TestStatsBuild|TestMetrics|TestRequestID|TestSlowlog|TestObservability' ./internal/server/ ./internal/client/

# Sharding focus: the scatter-gather coordinator suite — bit-identity
# to a single node across shard counts 1/2/4/8 with mutations, the
# region-certificate property, the retry double-count guard, and the
# shard-killed fault-injection e2e — all under -race.
test-shard:
	$(GO) test -race -count=1 ./internal/shard/

# Docs drift check: markdown cross-references must resolve and every
# flag the docs mention must exist in the binaries.
check-docs:
	$(GO) run ./cmd/docscheck

ci: build vet lint test race
