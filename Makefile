# Tier-1 verification and day-to-day targets. `make ci` is the one
# command the verify loop runs: build, vet, tests, race tests.

GO ?= go

.PHONY: all build test race vet bench-smoke test-wal ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# A fast benchmark pass over the analyze path: enough to catch gross
# regressions without the full figure sweep of cmd/irbench.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig10|BenchmarkParallelCompute|BenchmarkServerAnalyzeParallel' \
		-benchmem -benchtime=200ms .

# Durability focus: the WAL package under -race, the crash-recovery and
# checkpoint property tests, and a bench smoke so the fsync overhead of
# the write path stays tracked.
test-wal:
	$(GO) test -race ./internal/wal/...
	$(GO) test -race -run 'TestDurable|TestCheckpoint|TestStatsDurable' ./internal/engine/... ./internal/server/...
	$(GO) test -run '^$$' -bench 'BenchmarkApplyWAL' -benchmem -benchtime=50ms ./internal/engine/

ci: build vet test race
