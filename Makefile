# Tier-1 verification and day-to-day targets. `make ci` is the one
# command the verify loop runs: build, vet, tests, race tests.

GO ?= go

.PHONY: all build test race vet bench-smoke ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# A fast benchmark pass over the analyze path: enough to catch gross
# regressions without the full figure sweep of cmd/irbench.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig10|BenchmarkParallelCompute|BenchmarkServerAnalyzeParallel' \
		-benchmem -benchtime=200ms .

ci: build vet test race
