// Command irlint runs the repo's invariant analyzers — the written
// rules of docs/architecture.md and the package godocs, machine-checked
// (see docs/static-analysis.md). It is the `make lint` entry point.
//
// Usage:
//
//	irlint [-list] [-analyzers name,name] [-suppressed] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 0 when clean, 1 when any unsuppressed diagnostic was
// reported, 2 when loading or analysis itself failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("irlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	showSuppressed := fs.Bool("suppressed", false, "also print findings silenced by //lint:allow comments")
	dir := fs.String("dir", ".", "directory to resolve package patterns from")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Registry {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.Registry
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "irlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader(*dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "irlint: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "irlint: %v\n", err)
		return 2
	}

	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		return diags[i].Pos.Line < diags[j].Pos.Line
	})

	failed := false
	for _, d := range diags {
		if d.Suppressed {
			if *showSuppressed {
				fmt.Fprintf(stdout, "%s [suppressed: %s]\n", d.String(), d.SuppressReason)
			}
			continue
		}
		failed = true
		fmt.Fprintln(stdout, d.String())
	}
	if failed {
		return 1
	}
	return 0
}
