// Command irbench regenerates the paper's evaluation: one runner per
// figure of §7, printed as aligned text tables (the same series the
// paper plots) and optionally dumped as CSV for plotting.
//
// Usage:
//
//	irbench                         # every figure, laptop scale
//	irbench -fig fig10,fig14        # a subset
//	irbench -scale 5 -queries 100   # closer to paper scale
//	irbench -csv out/               # also write CSV per figure
//	irbench -json bench.json        # per-figure wall-time medians + allocs
//	irbench -json head.json -baseline BENCH_7.json
//	                                # ...and a benchstat-style delta table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		figs     = flag.String("fig", "all", "comma-separated figure ids: fig6,fig7,fig10,...,fig16,phases,headline,stb,ablation")
		queries  = flag.Int("queries", 20, "queries averaged per measurement point (paper: 100)")
		scale    = flag.Float64("scale", 1, "dataset scale multiplier (≈20 reaches paper scale)")
		seed     = flag.Int64("seed", 1, "workload seed")
		csvDir   = flag.String("csv", "", "directory to also write per-figure CSV files")
		jsonOut  = flag.String("json", "", "measure selected figures (wall-time medians, allocs) and write JSON here instead of tables")
		baseline = flag.String("baseline", "", "prior -json file to print a per-figure delta table against (never fails the run)")
		reps     = flag.Int("benchreps", 5, "timed repetitions per figure in -json mode")
		shards   = flag.Int("shards", 0, "sharded mode: benchmark the scatter-gather coordinator over this many shards on a 10x ST dataset against single-node baselines, writing -json (default BENCH_10.json)")
	)
	flag.Parse()

	if *shards > 0 {
		out := *jsonOut
		if out == "" {
			out = "BENCH_10.json"
		}
		if err := runShardBench(*shards, *scale, *queries, *seed, out); err != nil {
			fmt.Fprintf(os.Stderr, "irbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	r := exp.NewRunner(exp.Config{Queries: *queries, Scale: *scale, Seed: *seed})
	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	sel := func(id string) bool { return all || want[id] }

	if *jsonOut != "" || *baseline != "" {
		head := runBench(r, sel, *reps)
		if *jsonOut != "" {
			if err := writeBenchJSON(*jsonOut, head); err != nil {
				fmt.Fprintf(os.Stderr, "irbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d figures)\n", *jsonOut, len(head.Figures))
		}
		if *baseline != "" {
			compareBench(*baseline, head)
		}
		return
	}

	emit := func(f exp.Figure) {
		f.WriteTable(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "irbench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, f.ID+".csv")
			w, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "irbench: %v\n", err)
				os.Exit(1)
			}
			f.WriteCSV(w)
			w.Close()
			fmt.Printf("   wrote %s\n\n", path)
		}
	}

	start := time.Now()
	if sel("fig6") {
		for _, useST := range []bool{false, true} {
			name := "fig6a-wsj"
			if useST {
				name = "fig6b-st"
			}
			rows := r.Fig6(useST)
			fmt.Printf("== %s — result/candidate scatter (score vs 1st query coordinate) ==\n", name)
			fmt.Printf("%-10s %10s %10s %4s\n", "class", "coord", "score", "nz")
			for _, row := range rows {
				fmt.Printf("%-10s %10.4f %10.4f %4d\n", row.Class, row.Coord, row.Score, row.NZ)
			}
			fmt.Println()
		}
	}
	if sel("fig7") {
		fmt.Println("== fig7 — candidate partition sizes per query dimension (qlen=4, k=10) ==")
		fmt.Printf("%-8s %10s %10s %10s %12s\n", "dataset", "C0", "CH", "CL", "|C(q)|")
		for _, ps := range r.Fig7() {
			fmt.Printf("%-8s %10.1f %10.1f %10.1f %12.1f\n", ps.Dataset, ps.C0, ps.CH, ps.CL, ps.CandidateTotal)
		}
		fmt.Println()
	}
	if sel("fig10") {
		emit(r.Fig10())
	}
	if sel("fig11") {
		emit(r.Fig11())
	}
	if sel("fig12") {
		emit(r.Fig12())
	}
	if sel("fig13") {
		wsj, st := r.Fig13()
		emit(wsj)
		emit(st)
	}
	if sel("fig14") {
		emit(r.Fig14())
	}
	if sel("fig15") {
		emit(r.Fig15())
	}
	if sel("fig16") {
		emit(r.Fig16())
	}
	if sel("phases") {
		fmt.Println("== §7.2 — per-phase CPU split (WSJ, k=10, qlen=4) ==")
		fmt.Printf("%-8s %12s %12s %12s %14s\n", "method", "phase1", "phase2", "phase3", "phase3 pulled")
		for _, pc := range r.PhaseBreakdown() {
			fmt.Printf("%-8s %12v %12v %12v %14.1f\n", pc.Method, pc.Phase1, pc.Phase2, pc.Phase3, pc.Phase3Pulled)
		}
		fmt.Println()
	}
	if sel("headline") {
		fmt.Println("== headline — Scan vs CPT evaluated candidates (abstract: 2x to >500x) ==")
		fmt.Printf("%-26s %12s %12s %8s\n", "workload", "Scan", "CPT", "ratio")
		for _, row := range r.Headline() {
			fmt.Printf("%-26s %12.1f %12.1f %7.1fx\n", row.Workload, row.Scan, row.CPT, row.Ratio)
		}
		fmt.Println()
	}
	if sel("ablation") {
		fmt.Println("== ablation — TA probing policy and NRA (WSJ, k=10, qlen=4) ==")
		fmt.Printf("%-18s %16s %12s %12s\n", "variant", "sorted accesses", "rand reads", "CPU")
		for _, row := range r.AblationProbing() {
			fmt.Printf("%-18s %16.1f %12.1f %12v\n", row.Name, row.SortedAccesses, row.RandReads, row.CPU)
		}
		fmt.Println()
		fmt.Println("== ablation — thresholding schedule (KB, k=10, qlen=8, CPT) ==")
		fmt.Printf("%-18s %12s %12s %12s\n", "variant", "evaluated", "rand reads", "CPU")
		for _, row := range r.AblationSchedule() {
			fmt.Printf("%-18s %12.1f %12.1f %12v\n", row.Name, row.Evaluated, row.RandReads, row.CPU)
		}
		fmt.Println()
	}
	if sel("stb") {
		cmp := r.STB()
		fmt.Println("== §2 — STB sensitivity radius vs immutable regions (WSJ, k=10, qlen=4) ==")
		fmt.Printf("queries                 : %d\n", cmp.Queries)
		fmt.Printf("STB tuples scanned      : %.0f per query (all non-result tuples)\n", cmp.STBScanned)
		fmt.Printf("CPT candidates evaluated: %.1f per query\n", cmp.CPTEvaluated)
		fmt.Printf("mean radius rho         : %.5f\n", cmp.MeanRho)
		fmt.Printf("mean min IR extent      : %.5f (>= rho along its axis, and IR names the new result)\n", cmp.MeanMinIRExtent)
		fmt.Println()
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}
