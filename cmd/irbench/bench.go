package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/exp"
)

// FigureBench is one figure's measured cost: the median wall time of
// reps full-figure runs plus the mean allocation profile per run. The
// JSON file these are written to (-json) is the comparison baseline a
// later run reads back (-baseline), so regressions in the scoring
// kernels or the scan fusion show up as per-figure deltas.
type FigureBench struct {
	Figure   string  `json:"figure"`
	Reps     int     `json:"reps"`
	MedianNs int64   `json:"median_ns"`
	Allocs   float64 `json:"allocs_per_run"`
	Bytes    float64 `json:"bytes_per_run"`
}

// BenchFile is the -json/-baseline payload. The workload knobs are
// recorded so a comparison against a baseline measured under different
// settings is flagged instead of silently misleading.
type BenchFile struct {
	Queries int           `json:"queries"`
	Scale   float64       `json:"scale"`
	Seed    int64         `json:"seed"`
	Go      string        `json:"go"`
	Figures []FigureBench `json:"figures"`
}

// benchFigures is the set of figure runners measured by -json, in
// emission order.
func benchFigures(r *exp.Runner) []struct {
	id  string
	run func() exp.Figure
} {
	return []struct {
		id  string
		run func() exp.Figure
	}{
		{"fig10", r.Fig10},
		{"fig12", r.Fig12},
		{"fig14", r.Fig14},
	}
}

// runBench measures the selected figures and returns the payload.
// Each figure gets one untimed warm-up run (building the cached
// datasets), then reps timed runs.
func runBench(r *exp.Runner, sel func(string) bool, reps int) BenchFile {
	out := BenchFile{
		Queries: r.Cfg.Queries, Scale: r.Cfg.Scale, Seed: r.Cfg.Seed,
		Go: runtime.Version(),
	}
	for _, f := range benchFigures(r) {
		if !sel(f.id) {
			continue
		}
		f.run() // warm-up: dataset generation is cached in the runner
		wall := make([]int64, reps)
		var allocs, bytes float64
		var ms0, ms1 runtime.MemStats
		for i := 0; i < reps; i++ {
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			t0 := time.Now()
			f.run()
			wall[i] = time.Since(t0).Nanoseconds()
			runtime.ReadMemStats(&ms1)
			allocs += float64(ms1.Mallocs - ms0.Mallocs)
			bytes += float64(ms1.TotalAlloc - ms0.TotalAlloc)
		}
		sort.Slice(wall, func(i, j int) bool { return wall[i] < wall[j] })
		out.Figures = append(out.Figures, FigureBench{
			Figure: f.id, Reps: reps,
			MedianNs: wall[reps/2],
			Allocs:   allocs / float64(reps),
			Bytes:    bytes / float64(reps),
		})
	}
	return out
}

// writeBenchJSON persists the payload for later -baseline comparison.
func writeBenchJSON(path string, bf BenchFile) error {
	raw, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// compareBench prints a benchstat-style per-figure delta table of head
// against the baseline file. It never fails the run: the comparison is
// a report, not a gate (CI marks the step non-blocking the same way).
func compareBench(baselinePath string, head BenchFile) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irbench: baseline unreadable, skipping comparison: %v\n", err)
		return
	}
	var base BenchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "irbench: baseline unparsable, skipping comparison: %v\n", err)
		return
	}
	if base.Queries != head.Queries || base.Scale != head.Scale || base.Seed != head.Seed {
		fmt.Printf("!! baseline measured at queries=%d scale=%v seed=%d, head at queries=%d scale=%v seed=%d — deltas not comparable\n",
			base.Queries, base.Scale, base.Seed, head.Queries, head.Scale, head.Seed)
	}
	byID := map[string]FigureBench{}
	for _, fb := range base.Figures {
		byID[fb.Figure] = fb
	}
	fmt.Printf("== bench-compare vs %s ==\n", baselinePath)
	fmt.Printf("%-8s %14s %14s %8s %14s %14s %8s\n",
		"figure", "old time", "new time", "delta", "old allocs", "new allocs", "delta")
	for _, fb := range head.Figures {
		old, ok := byID[fb.Figure]
		if !ok {
			fmt.Printf("%-8s %14s %14s\n", fb.Figure, "(new)",
				time.Duration(fb.MedianNs).Round(time.Millisecond).String())
			continue
		}
		fmt.Printf("%-8s %14v %14v %+7.1f%% %14.0f %14.0f %+7.1f%%\n",
			fb.Figure,
			time.Duration(old.MedianNs).Round(time.Millisecond),
			time.Duration(fb.MedianNs).Round(time.Millisecond),
			pctDelta(float64(old.MedianNs), float64(fb.MedianNs)),
			old.Allocs, fb.Allocs,
			pctDelta(old.Allocs, fb.Allocs))
	}
	fmt.Println()
}

func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}
