package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/vec"
)

// ShardBenchFile is the -shards payload (BENCH_10.json): per-query p50
// /analyze latency of a single node over a base ST dataset, a single
// node over the 10× dataset, and the scatter-gather coordinator over
// the same 10× dataset split across -shards in-process engines.
//
// Two sharded numbers are recorded. SerialP50Ns is the coordinator's
// raw wall time on THIS host: with fewer cores than shards the fan-out
// time-slices, so it sums the per-shard compute and says nothing about
// the deployed latency. ShardP50Ns is the critical path — the latency
// the deployment model actually promises (one core or machine per
// shard): each shard's two rounds are timed in isolation, and the
// per-query figure is max(round-1) + max(round-2). The coordinator's
// own merge work is excluded; it is O(shards·k) score comparisons plus
// per-dimension min/max and BenchmarkMergeTopK/BenchmarkMergeClassic
// (internal/shard) pin it at microseconds against these millisecond
// rounds. MaxProcs records how many cores the serialized number had to
// share.
//
// RatioVs10x compares the critical path to a single node over the SAME
// 10× data: under 1 means sharding beats one big node even per query.
// RatioVsBase is the ROADMAP scale-out target — 10× the data at
// comparable latency to the base single node.
type ShardBenchFile struct {
	Dataset     string  `json:"dataset"`
	Shards      int     `json:"shards"`
	NBase       int     `json:"n_base"`
	NBig        int     `json:"n_big"`
	Queries     int     `json:"queries"`
	K           int     `json:"k"`
	QLen        int     `json:"qlen"`
	Seed        int64   `json:"seed"`
	Go          string  `json:"go"`
	MaxProcs    int     `json:"maxprocs"`
	BaseP50Ns   int64   `json:"single_base_p50_ns"`
	Big1P50Ns   int64   `json:"single_10x_p50_ns"`
	SerialP50Ns int64   `json:"sharded_10x_serialized_p50_ns"`
	ShardP50Ns  int64   `json:"sharded_10x_critical_path_p50_ns"`
	RatioVs10x  float64 `json:"ratio_vs_single_10x"`
	RatioVsBase float64 `json:"ratio_vs_single_base"`
}

// runShardBench measures the sharded /analyze path against single-node
// baselines and writes the JSON payload to out.
func runShardBench(shards int, scale float64, queries int, seed int64, out string) error {
	const k, qlen = 10, 4
	ctx := context.Background()
	nBase := int(50000 * scale)
	if nBase < 1000 {
		nBase = 1000
	}
	rng := rand.New(rand.NewSource(seed))

	fmt.Printf("== sharded scatter-gather vs single node (ST, k=%d, qlen=%d, %d queries) ==\n", k, qlen, queries)
	ecfg := engine.Config{CacheEntries: -1} // measure computation, not the answer cache

	// ST queries draw from the fixed 20-dim space, so they can be
	// sampled from the small dataset and reused everywhere.
	base := dataset.GenerateST(dataset.STConfig{N: nBase, Seed: seed})
	qs := make([]vec.Query, queries)
	for i := range qs {
		q, err := base.SampleQuery(rng, qlen, 1)
		if err != nil {
			return err
		}
		qs[i] = q
	}

	// Each configuration is built, measured and released before the next
	// one exists: with three 10×-sized engines resident at once, GC over
	// the combined heap dominates single-core p50s and swamps the signal.
	measure := func(run func(vec.Query) error) (int64, error) {
		runtime.GC()
		// One untimed pass warms every engine's pools and pages.
		if err := run(qs[0]); err != nil {
			return 0, err
		}
		wall := make([]int64, len(qs))
		for i, q := range qs {
			t0 := time.Now()
			if err := run(q); err != nil {
				return 0, err
			}
			wall[i] = time.Since(t0).Nanoseconds()
		}
		sort.Slice(wall, func(i, j int) bool { return wall[i] < wall[j] })
		return wall[len(wall)/2], nil
	}

	singleBase := engine.New(base.Index(), ecfg)
	basep50, err := measure(func(q vec.Query) error {
		_, err := singleBase.Analyze(ctx, q, k, engine.Options{})
		return err
	})
	if err != nil {
		return err
	}
	singleBase, base = nil, nil

	big := dataset.GenerateST(dataset.STConfig{N: 10 * nBase, Seed: seed})
	singleBig := engine.New(big.Index(), ecfg)
	bigp50, err := measure(func(q vec.Query) error {
		_, err := singleBig.Analyze(ctx, q, k, engine.Options{})
		return err
	})
	if err != nil {
		return err
	}
	singleBig = nil

	// The coordinator and the per-shard probes run over the SAME
	// engines, so critical-path timings measure exactly the work the
	// serialized wall sums.
	bases := shard.EvenBases(len(big.Tuples), shards)
	engs, err := engine.NewLocalShards(big.Tuples, big.M, bases, ecfg)
	if err != nil {
		return err
	}
	backends := make([]shard.Backend, len(engs))
	for i, e := range engs {
		backends[i] = shard.Local{E: e}
	}
	mp, err := shard.NewMap(bases)
	if err != nil {
		return err
	}
	coord, err := shard.New(mp, backends, shard.Config{})
	if err != nil {
		return err
	}
	big = nil // the shard engines own copies of their ranges

	serialp50, err := measure(func(q vec.Query) error {
		_, err := coord.Analyze(ctx, q, k, engine.Options{})
		return err
	})
	if err != nil {
		return err
	}

	// Critical path: each shard's two rounds timed in isolation, against
	// the global result the coordinator merges for the same query.
	runtime.GC()
	modelW := make([]int64, len(qs))
	for i, q := range qs {
		res, err := coord.TopK(ctx, q, k)
		if err != nil {
			return err
		}
		var r1max, r2max int64
		for s, eng := range engs {
			t := time.Now()
			if _, err := eng.TopKScored(ctx, q, k); err != nil {
				return err
			}
			if r1 := time.Since(t).Nanoseconds(); r1 > r1max {
				r1max = r1
			}
			t = time.Now()
			if _, _, err := eng.AnalyzeImposed(ctx, q, k, bases[s], res.Result, engine.Options{}); err != nil {
				return err
			}
			if r2 := time.Since(t).Nanoseconds(); r2 > r2max {
				r2max = r2
			}
		}
		modelW[i] = r1max + r2max
	}
	sort.Slice(modelW, func(i, j int) bool { return modelW[i] < modelW[j] })
	shardp50 := modelW[len(modelW)/2]

	res := ShardBenchFile{
		Dataset: "st", Shards: shards, NBase: nBase, NBig: 10 * nBase,
		Queries: queries, K: k, QLen: qlen, Seed: seed,
		Go: runtime.Version(), MaxProcs: runtime.GOMAXPROCS(0),
		BaseP50Ns: basep50, Big1P50Ns: bigp50,
		SerialP50Ns: serialp50, ShardP50Ns: shardp50,
		RatioVs10x:  float64(shardp50) / float64(bigp50),
		RatioVsBase: float64(shardp50) / float64(basep50),
	}
	fmt.Printf("single %7d tuples : p50 %v\n", nBase, time.Duration(basep50))
	fmt.Printf("single %7d tuples : p50 %v\n", 10*nBase, time.Duration(bigp50))
	fmt.Printf("%2d shards, %7d tuples: p50 %v critical path (%v serialized on %d core(s))\n",
		shards, 10*nBase, time.Duration(shardp50), time.Duration(serialp50), res.MaxProcs)
	fmt.Printf("ratio vs single on 10x : %.2fx\n", res.RatioVs10x)
	fmt.Printf("ratio vs single on base: %.2fx (scale-out target)\n", res.RatioVsBase)

	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
