// Command irserver serves a persisted dataset over the JSON HTTP API
// (see internal/server): POST /topk, POST /analyze, POST /batchanalyze,
// POST /update, POST /delete, GET /stats, GET /healthz. Queries execute
// through the unified engine layer, so repeated and in-region weight
// vectors are answered from the immutable-region cache without touching
// the index. Writes go through a memory-resident overlay on the disk
// files (the files themselves never change); cached analyses survive a
// write whenever the region certificate proves them unaffected.
//
// Usage:
//
//	irgen -dataset kb -out /tmp/kb
//	irserver -data /tmp/kb -addr :8080
//	curl -s localhost:8080/analyze -d '{"dims":[3,17],"weights":[0.8,0.5],"k":10,"phi":1}'
//	curl -s localhost:8080/batchanalyze -d '{"queries":[{"dims":[3,17],"weights":[0.8,0.5],"k":10}]}'
//
// With -demo it serves the paper's running example.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/server"
)

func main() {
	var (
		data         = flag.String("data", "", "directory containing tuples.dat and lists.dat")
		demo         = flag.Bool("demo", false, "serve the paper's running example")
		addr         = flag.String("addr", ":8080", "listen address")
		pool         = flag.Int("pool", 1024, "buffer pool pages for the disk index")
		maxConc      = flag.Int("max-concurrent", 0, "max queries executing at once (0 = default 4×GOMAXPROCS, negative = unlimited)")
		parallelism  = flag.Int("parallelism", 0, "per-query dimension parallelism for /analyze (0 = paper-literal sequential)")
		cacheEntries = flag.Int("cache-entries", 0, "answer cache entry bound (0 = default)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "answer cache byte bound (0 = default)")
		noCache      = flag.Bool("no-cache", false, "disable the immutable-region answer cache")
		verify       = flag.Bool("verify", false, "verify dataset file checksums before serving")
		readonly     = flag.Bool("readonly", false, "disable POST /update and /delete (disk datasets are then served without the write overlay)")
	)
	flag.Parse()

	cfg := engine.Config{
		MaxConcurrent:   *maxConc,
		Parallelism:     *parallelism,
		CacheEntries:    *cacheEntries,
		CacheBytes:      *cacheBytes,
		VerifyChecksums: *verify,
		ReadOnly:        *readonly,
	}
	if *noCache {
		cfg.CacheEntries = -1
	}

	var eng *engine.Engine
	switch {
	case *demo:
		tuples, _, _ := fixture.RunningExample()
		eng = engine.New(lists.NewMemIndex(tuples, 2), cfg)
	case *data != "":
		var err error
		eng, err = engine.Open(
			filepath.Join(*data, "tuples.dat"),
			filepath.Join(*data, "lists.dat"),
			*pool,
			cfg,
		)
		if err != nil {
			log.Fatalf("irserver: %v", err)
		}
		defer eng.Close()
	default:
		log.Fatal("irserver: need -data DIR or -demo")
	}

	srv := server.FromEngine(eng)
	fmt.Printf("irserver: %d tuples, %d dimensions, listening on %s (max-concurrent=%d parallelism=%d cache=%v mutable=%v)\n",
		eng.N(), eng.Dim(), *addr, *maxConc, *parallelism, eng.CacheEnabled(), eng.Mutable())
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
