// Command irserver serves a persisted dataset over the JSON HTTP API
// (see internal/server): POST /topk, POST /analyze, POST /batchanalyze,
// POST /update, POST /delete, GET /stats, GET /healthz. Queries execute
// through the unified engine layer, so repeated and in-region weight
// vectors are answered from the immutable-region cache without touching
// the index.
//
// Writes go through an overlay on the disk files (the files themselves
// only change at checkpoints); with -wal every /update and /delete
// batch is appended to wal.log before it applies, replayed on restart,
// and folded into fresh dataset files once the log or overlay outgrows
// -checkpoint-bytes. Cached analyses survive a write whenever the
// region certificate proves them unaffected.
//
// With -replicate-listen a -wal server additionally acts as a
// replication primary: it streams committed WAL frames to followers,
// and with -ack=quorum each write batch is acknowledged only after a
// majority of connected followers confirm an fsync. With -follow the
// server is a warm read-only standby: it replicates the named primary
// into -data (bootstrapping via snapshot transfer when needed), serves
// the read endpoints from its replayed state, and answers writes with
// 409 plus a Location pointer to the primary. See docs/replication.md
// and docs/operations.md.
//
// With -cluster the server joins an HA cluster under the failover
// coordinator: the node detects primary death over the replication
// heartbeat stream, elects a successor deterministically (highest
// fsynced sequence, node id tiebreak), promotes it under a new fencing
// epoch, and demotes a deposed primary that comes back — no operator
// action. Exactly one member boots with -cluster-primary; the rest
// start as followers. GET /cluster serves the topology beacon, GET
// /readyz routing readiness, and POST /promote forces promotion.
// Front the members with irproxy for a single stable address.
//
// On SIGINT/SIGTERM the server drains in-flight requests (bounded by
// -shutdown-timeout) and then flushes and closes the write-ahead log.
//
// Usage:
//
//	irgen -dataset kb -out /tmp/kb
//	irserver -data /tmp/kb -addr :8080 -wal -replicate-listen :7070
//	irserver -data /tmp/kb-standby -addr :8081 -follow localhost:7070
//	curl -s localhost:8080/analyze -d '{"dims":[3,17],"weights":[0.8,0.5],"k":10,"phi":1}'
//	curl -s localhost:8080/update -d '{"ops":[{"tuple":[{"dim":3,"val":0.9}]}]}'
//
// With -demo it serves the paper's running example.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wal"
)

func main() {
	var (
		data         = flag.String("data", "", "dataset directory (tuples/lists files, MANIFEST, wal.log)")
		demo         = flag.Bool("demo", false, "serve the paper's running example")
		addr         = flag.String("addr", ":8080", "listen address")
		pool         = flag.Int("pool", 1024, "buffer pool pages for the disk index")
		maxConc      = flag.Int("max-concurrent", 0, "max queries executing at once (0 = default 4×GOMAXPROCS, negative = unlimited)")
		parallelism  = flag.Int("parallelism", 0, "per-query dimension parallelism for /analyze (0 = paper-literal sequential)")
		cacheEntries = flag.Int("cache-entries", 0, "answer cache entry bound (0 = default)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "answer cache byte bound (0 = default)")
		noCache      = flag.Bool("no-cache", false, "disable the immutable-region answer cache")
		verify       = flag.Bool("verify", false, "verify dataset file checksums before serving")
		readonly     = flag.Bool("readonly", false, "disable POST /update and /delete (disk datasets are then served without the write overlay)")
		useWAL       = flag.Bool("wal", false, "write-ahead log: persist update batches to wal.log beside the dataset files and replay them on start")
		syncF        = flag.String("sync", "batch", "WAL fsync policy: batch (per update batch), none, or an interval like 250ms")
		ckptBytes    = flag.Int64("checkpoint-bytes", 0, "compact the WAL + overlay into fresh dataset files past this size (0 = default 64MiB, negative = never)")
		shutdownTo   = flag.Duration("shutdown-timeout", 10*time.Second, "how long graceful shutdown waits for in-flight requests")
		replListen   = flag.String("replicate-listen", "", "replication primary: accept follower connections on this address (requires -wal; in -cluster mode, the node's replication listener)")
		follow       = flag.String("follow", "", "replication standby: replicate from this primary replication address into -data and serve read-only")
		ackF         = flag.String("ack", "async", "primary replication ack mode: async, or quorum (writes wait for ⌈n/2⌉ follower fsyncs)")
		ackTimeout   = flag.Duration("ack-timeout", 5*time.Second, "quorum ack wait bound before a write reports a missed quorum")
		cluster      = flag.String("cluster", "", "HA cluster mode: comma-separated peer HTTP base URLs (the OTHER members); enables the failover coordinator")
		clusterPrim  = flag.Bool("cluster-primary", false, "boot this cluster member in the primary role (exactly one member per cluster)")
		advertise    = flag.String("advertise", "", "this node's HTTP base URL as peers and clients should reach it (default derived from -addr)")
		nodeID       = flag.String("node-id", "", "stable node identity and election tiebreaker (default: the advertise URL)")
		failoverTo   = flag.Duration("failover-timeout", 2*time.Second, "heartbeat silence a follower tolerates before suspecting the primary dead")
		probeIvl     = flag.Duration("probe-interval", 500*time.Millisecond, "coordination step period (peer probing, election checks)")
		readyLag     = flag.Uint64("ready-lag", 1024, "max replication lag (in sequence numbers) for /readyz to report ready on a standby")
		shardDir     = flag.String("shard-dir", "", "serve ONE shard of a range-partitioned dataset (irgen -shards layout: shard-<i>/ dirs under this root); requires -shard-id")
		shardID      = flag.Int("shard-id", -1, "which shard of -shard-dir this server owns")
		slowQuery    = flag.Duration("slow-query", server.DefaultSlowQuery, "record queries slower than this in GET /debug/slowlog (0 disables)")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (off when empty)")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("irserver %s (commit %s)\n", obs.Version, obs.Commit)
		return
	}
	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	syncPolicy, err := wal.ParseSyncPolicy(*syncF)
	if err != nil {
		log.Fatalf("irserver: %v", err)
	}
	ackMode, err := replication.ParseAckMode(*ackF)
	if err != nil {
		log.Fatalf("irserver: %v", err)
	}
	cfg := engine.Config{
		MaxConcurrent:   *maxConc,
		Parallelism:     *parallelism,
		CacheEntries:    *cacheEntries,
		CacheBytes:      *cacheBytes,
		VerifyChecksums: *verify,
		ReadOnly:        *readonly,
		WAL:             *useWAL,
		WALSync:         syncPolicy,
		CheckpointBytes: *ckptBytes,
	}
	if *noCache {
		cfg.CacheEntries = -1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		srv      *server.Server
		eng      *engine.Engine
		prim     *replication.Primary
		fol      *replication.Follower
		shutdown func() // post-drain resource teardown, in order
	)
	switch {
	case *cluster != "" || *clusterPrim:
		// HA cluster member: the failover coordinator owns the engine,
		// the replication listener and the role; the server consults it
		// per request for the engine, the write gate and readiness.
		if *data == "" {
			log.Fatal("irserver: -cluster needs -data DIR")
		}
		if *demo || *follow != "" || *readonly {
			log.Fatal("irserver: -cluster is exclusive with -demo, -follow and -readonly")
		}
		adv := *advertise
		if adv == "" {
			host, port, err := net.SplitHostPort(*addr)
			if err != nil {
				log.Fatalf("irserver: cannot derive -advertise from -addr %q: %v", *addr, err)
			}
			if host == "" {
				host = "127.0.0.1"
			}
			adv = "http://" + net.JoinHostPort(host, port)
		}
		node, err := replication.NewNode(replication.NodeConfig{
			Dir:             *data,
			PoolPages:       *pool,
			Engine:          cfg,
			NodeID:          *nodeID,
			AdvertiseHTTP:   adv,
			ReplListen:      *replListen,
			Peers:           splitPeers(*cluster),
			StartPrimary:    *clusterPrim,
			AckMode:         ackMode,
			AckTimeout:      *ackTimeout,
			FailoverTimeout: *failoverTo,
			ProbeInterval:   *probeIvl,
			ReadyLag:        *readyLag,
		})
		if err != nil {
			log.Fatalf("irserver: %v", err)
		}
		go node.Run(ctx)
		eng = node.Engine() // may be nil on a fresh member awaiting its first snapshot
		srv = server.FromEngineFunc(node.Engine)
		srv.SetWriteGate(node.WriteGate)
		srv.SetReadiness(node.Readiness)
		srv.SetClusterInfo(func() any { return node.ClusterInfo() })
		srv.SetPromote(node.Promote)
		srv.SetReplicationStats(func() any { return node.Stats() })
		shutdown = func() {
			stop() // cancel ctx so node.Run unwinds and closes the engine
			<-node.Done()
		}
		fmt.Printf("irserver: cluster member %s (repl %s, boot role %s, peers %v)\n",
			adv, node.ReplAddr(), map[bool]string{true: "primary", false: "follower"}[*clusterPrim], splitPeers(*cluster))

	case *follow != "":
		// Replication standby: the follower owns the engine lifecycle
		// (it may replace it on a snapshot re-seed), the server resolves
		// it per request, and writes are redirected to the primary.
		if *data == "" {
			log.Fatal("irserver: -follow needs -data DIR (the standby's own directory)")
		}
		if *demo || *replListen != "" || *useWAL || *readonly {
			log.Fatal("irserver: -follow is exclusive with -demo, -replicate-listen, -wal and -readonly (the standby is always durable and read-only)")
		}
		fol = replication.NewFollower(replication.FollowerConfig{
			Dir:         *data,
			PrimaryAddr: *follow,
			PoolPages:   *pool,
			Engine:      cfg,
		})
		go fol.Run(ctx)
		readyCtx, cancel := context.WithTimeout(ctx, time.Minute)
		e, err := fol.WaitReady(readyCtx)
		cancel()
		if err != nil {
			log.Fatalf("irserver: %v", err)
		}
		eng = e
		srv = server.FromEngineFunc(fol.Engine)
		if url := fol.PrimaryHTTPURL(); url != "" {
			srv.SetWriteRedirect(url)
		} else {
			srv.SetWriteRedirect("http://" + *follow) // best effort pointer
		}
		srv.SetReplicationStats(func() any { return fol.Stats() })
		srv.SetReadiness(func() error {
			st := fol.Stats()
			if fol.Engine() == nil {
				return fmt.Errorf("snapshot bootstrap in progress")
			}
			if !st.Connected {
				return fmt.Errorf("replication session down")
			}
			if st.SeqDelta > *readyLag {
				return fmt.Errorf("replication lag %d exceeds the %d bound", st.SeqDelta, *readyLag)
			}
			return nil
		})
		shutdown = func() {
			stop() // ensure ctx is canceled so Run unwinds
			<-fol.Done()
			if err := fol.Close(); err != nil {
				obs.Log().Warn("follower_close_failed", "error", err.Error())
			}
		}
		fmt.Printf("irserver: standby of %s (dataset %s), lag %d\n", *follow, *data, fol.Stats().SeqDelta)

	case *shardDir != "":
		// One shard of a range-partitioned dataset (irgen -shards). The
		// server is an ordinary standalone primary over the shard's own
		// files; it additionally advertises a single-member /cluster
		// beacon so a coordinator (irproxy -shard-map) can route to it
		// through internal/client exactly as it would to an HA group.
		if *shardID < 0 {
			log.Fatal("irserver: -shard-dir needs -shard-id")
		}
		if *demo || *data != "" || *follow != "" || *useWAL || *cluster != "" || *clusterPrim {
			log.Fatal("irserver: -shard-dir is exclusive with -data, -demo, -follow, -wal and -cluster")
		}
		eng, err = engine.OpenShard(*shardDir, *shardID, *pool, cfg)
		if err != nil {
			log.Fatalf("irserver: %v", err)
		}
		srv = server.FromEngine(eng)
		adv := *advertise
		if adv == "" {
			host, port, err := net.SplitHostPort(*addr)
			if err != nil {
				log.Fatalf("irserver: cannot derive -advertise from -addr %q: %v", *addr, err)
			}
			if host == "" {
				host = "127.0.0.1"
			}
			adv = "http://" + net.JoinHostPort(host, port)
		}
		srv.SetClusterInfo(shard.SelfBeacon(fmt.Sprintf("shard-%d", *shardID), adv))
		shutdown = func() { eng.Close() }
		fmt.Printf("irserver: shard %d of %s, advertised at %s\n", *shardID, *shardDir, adv)

	case *demo:
		tuples, _, _ := fixture.RunningExample()
		eng = engine.New(lists.NewMemIndex(tuples, 2), cfg)
		srv = server.FromEngine(eng)
		shutdown = func() { eng.Close() }

	case *data != "":
		eng, err = engine.OpenDir(*data, *pool, cfg)
		if err != nil {
			log.Fatalf("irserver: %v", err)
		}
		srv = server.FromEngine(eng)
		shutdown = func() { eng.Close() }
		if *replListen != "" {
			if !*useWAL {
				log.Fatal("irserver: -replicate-listen requires -wal (the shipped stream IS the write-ahead log)")
			}
			prim, err = replication.NewPrimary(eng, *data, replication.PrimaryConfig{
				HTTPAddr:   *addr,
				AckMode:    ackMode,
				AckTimeout: *ackTimeout,
			})
			if err != nil {
				log.Fatalf("irserver: %v", err)
			}
			eng.SetReplicationSink(prim)
			if ackMode == replication.AckQuorum {
				eng.SetCommitGate(prim.Gate)
			}
			ln, err := net.Listen("tcp", *replListen)
			if err != nil {
				log.Fatalf("irserver: replication listen: %v", err)
			}
			go func() {
				if err := prim.Serve(ln); err != nil {
					obs.Log().Error("replication_serve_failed", "error", err.Error())
				}
			}()
			srv.SetReplicationStats(func() any { return prim.Stats() })
			closeEng := shutdown
			shutdown = func() {
				prim.Close() // sever followers + fail pending quorum waits first
				closeEng()
			}
			fmt.Printf("irserver: replication primary on %s (ack=%s, dataset %s)\n", *replListen, ackMode, prim.DatasetID())
		}

	default:
		log.Fatal("irserver: need -data DIR, -demo, or -follow PRIMARY")
	}

	srv.SetSlowQuery(*slowQuery)
	httpSrv := &http.Server{Addr: *addr, Handler: obs.AccessLog(srv.Handler())}
	obs.Log().Info("starting", "version", obs.Version, "commit", obs.Commit, "addr", *addr)

	if eng != nil {
		fmt.Printf("irserver: %d tuples, %d dimensions, listening on %s (max-concurrent=%d parallelism=%d cache=%v mutable=%v wal=%v)\n",
			eng.N(), eng.Dim(), *addr, *maxConc, *parallelism, eng.CacheEnabled(), eng.Mutable(), eng.Durable())
		if ds := eng.DurabilityStats(); ds.Enabled && (ds.ReplayedRecords > 0 || ds.TruncatedBytes > 0) {
			fmt.Printf("irserver: recovered %d ops from %d wal records (%d torn bytes repaired)\n",
				ds.ReplayedOps, ds.ReplayedRecords, ds.TruncatedBytes)
		}
	} else {
		fmt.Printf("irserver: listening on %s, awaiting first snapshot from the cluster\n", *addr)
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests before
	// closing the engine — the WAL flush must come after the last
	// /update handler has returned.
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		shutdown()
		log.Fatalf("irserver: %v", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("irserver: shutting down, draining in-flight requests")
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTo)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Stragglers used up the grace period: sever their
			// connections so their request contexts fire and they abort;
			// the engine close below still waits for them to finish
			// unwinding before it touches the files.
			obs.Log().Warn("shutdown_timeout", "grace", shutdownTo.String())
			httpSrv.Close()
		} else {
			obs.Log().Warn("shutdown_error", "error", err.Error())
		}
	}
	shutdown()
	fmt.Println("irserver: bye")
}

// servePprof exposes net/http/pprof on its own listener, so the
// profiling surface never shares a port with the public API. Explicit
// registrations on a private mux — a blank import of net/http/pprof
// would mutate http.DefaultServeMux for the whole process.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if err := http.ListenAndServe(addr, mux); err != nil {
		obs.Log().Error("pprof_listen_failed", "addr", addr, "error", err.Error())
	}
}

// splitPeers parses the -cluster flag's comma-separated peer list.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
