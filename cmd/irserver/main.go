// Command irserver serves a persisted dataset over the JSON HTTP API
// (see internal/server): POST /topk, POST /analyze, POST /batchanalyze,
// POST /update, POST /delete, GET /stats, GET /healthz. Queries execute
// through the unified engine layer, so repeated and in-region weight
// vectors are answered from the immutable-region cache without touching
// the index.
//
// Writes go through an overlay on the disk files (the files themselves
// only change at checkpoints); with -wal every /update and /delete
// batch is appended to wal.log before it applies, replayed on restart,
// and folded into fresh dataset files once the log or overlay outgrows
// -checkpoint-bytes. Cached analyses survive a write whenever the
// region certificate proves them unaffected.
//
// On SIGINT/SIGTERM the server drains in-flight requests (bounded by
// -shutdown-timeout) and then flushes and closes the write-ahead log.
//
// Usage:
//
//	irgen -dataset kb -out /tmp/kb
//	irserver -data /tmp/kb -addr :8080 -wal
//	curl -s localhost:8080/analyze -d '{"dims":[3,17],"weights":[0.8,0.5],"k":10,"phi":1}'
//	curl -s localhost:8080/update -d '{"ops":[{"tuple":[{"dim":3,"val":0.9}]}]}'
//
// With -demo it serves the paper's running example.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	var (
		data         = flag.String("data", "", "dataset directory (tuples/lists files, MANIFEST, wal.log)")
		demo         = flag.Bool("demo", false, "serve the paper's running example")
		addr         = flag.String("addr", ":8080", "listen address")
		pool         = flag.Int("pool", 1024, "buffer pool pages for the disk index")
		maxConc      = flag.Int("max-concurrent", 0, "max queries executing at once (0 = default 4×GOMAXPROCS, negative = unlimited)")
		parallelism  = flag.Int("parallelism", 0, "per-query dimension parallelism for /analyze (0 = paper-literal sequential)")
		cacheEntries = flag.Int("cache-entries", 0, "answer cache entry bound (0 = default)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "answer cache byte bound (0 = default)")
		noCache      = flag.Bool("no-cache", false, "disable the immutable-region answer cache")
		verify       = flag.Bool("verify", false, "verify dataset file checksums before serving")
		readonly     = flag.Bool("readonly", false, "disable POST /update and /delete (disk datasets are then served without the write overlay)")
		useWAL       = flag.Bool("wal", false, "write-ahead log: persist update batches to wal.log beside the dataset files and replay them on start")
		syncF        = flag.String("sync", "batch", "WAL fsync policy: batch (per update batch), none, or an interval like 250ms")
		ckptBytes    = flag.Int64("checkpoint-bytes", 0, "compact the WAL + overlay into fresh dataset files past this size (0 = default 64MiB, negative = never)")
		shutdownTo   = flag.Duration("shutdown-timeout", 10*time.Second, "how long graceful shutdown waits for in-flight requests")
	)
	flag.Parse()

	syncPolicy, err := wal.ParseSyncPolicy(*syncF)
	if err != nil {
		log.Fatalf("irserver: %v", err)
	}
	cfg := engine.Config{
		MaxConcurrent:   *maxConc,
		Parallelism:     *parallelism,
		CacheEntries:    *cacheEntries,
		CacheBytes:      *cacheBytes,
		VerifyChecksums: *verify,
		ReadOnly:        *readonly,
		WAL:             *useWAL,
		WALSync:         syncPolicy,
		CheckpointBytes: *ckptBytes,
	}
	if *noCache {
		cfg.CacheEntries = -1
	}

	var eng *engine.Engine
	switch {
	case *demo:
		tuples, _, _ := fixture.RunningExample()
		eng = engine.New(lists.NewMemIndex(tuples, 2), cfg)
	case *data != "":
		eng, err = engine.OpenDir(*data, *pool, cfg)
		if err != nil {
			log.Fatalf("irserver: %v", err)
		}
	default:
		log.Fatal("irserver: need -data DIR or -demo")
	}

	srv := server.FromEngine(eng)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	fmt.Printf("irserver: %d tuples, %d dimensions, listening on %s (max-concurrent=%d parallelism=%d cache=%v mutable=%v wal=%v)\n",
		eng.N(), eng.Dim(), *addr, *maxConc, *parallelism, eng.CacheEnabled(), eng.Mutable(), eng.Durable())
	if ds := eng.DurabilityStats(); ds.Enabled && (ds.ReplayedRecords > 0 || ds.TruncatedBytes > 0) {
		fmt.Printf("irserver: recovered %d ops from %d wal records (%d torn bytes repaired)\n",
			ds.ReplayedOps, ds.ReplayedRecords, ds.TruncatedBytes)
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests before
	// closing the engine — the WAL flush must come after the last
	// /update handler has returned.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		eng.Close()
		log.Fatalf("irserver: %v", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("irserver: shutting down, draining in-flight requests")
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTo)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Stragglers used up the grace period: sever their
			// connections so their request contexts fire and they abort;
			// eng.Close below still waits for them to finish unwinding
			// before it touches the files.
			log.Printf("irserver: shutdown timeout after %v, closing connections", *shutdownTo)
			httpSrv.Close()
		} else {
			log.Printf("irserver: shutdown: %v", err)
		}
	}
	if err := eng.Close(); err != nil {
		log.Fatalf("irserver: close engine: %v", err)
	}
	fmt.Println("irserver: bye")
}
