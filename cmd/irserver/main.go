// Command irserver serves a persisted dataset over the JSON HTTP API
// (see internal/server): POST /topk, POST /analyze, GET /stats,
// GET /healthz.
//
// Usage:
//
//	irgen -dataset kb -out /tmp/kb
//	irserver -data /tmp/kb -addr :8080
//	curl -s localhost:8080/analyze -d '{"dims":[3,17],"weights":[0.8,0.5],"k":10,"phi":1}'
//
// With -demo it serves the paper's running example.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"path/filepath"

	"repro/internal/fixture"
	"repro/internal/lists"
	"repro/internal/server"
)

func main() {
	var (
		data        = flag.String("data", "", "directory containing tuples.dat and lists.dat")
		demo        = flag.Bool("demo", false, "serve the paper's running example")
		addr        = flag.String("addr", ":8080", "listen address")
		pool        = flag.Int("pool", 1024, "buffer pool pages for the disk index")
		maxConc     = flag.Int("max-concurrent", 0, "max queries executing at once (0 = default 4×GOMAXPROCS, negative = unlimited)")
		parallelism = flag.Int("parallelism", 0, "per-query dimension parallelism for /analyze (0 = paper-literal sequential)")
	)
	flag.Parse()

	var ix lists.Index
	switch {
	case *demo:
		tuples, _, _ := fixture.RunningExample()
		ix = lists.NewMemIndex(tuples, 2)
	case *data != "":
		disk, err := lists.OpenDiskIndex(
			filepath.Join(*data, "tuples.dat"),
			filepath.Join(*data, "lists.dat"),
			*pool,
		)
		if err != nil {
			log.Fatalf("irserver: %v", err)
		}
		defer disk.Close()
		ix = disk
	default:
		log.Fatal("irserver: need -data DIR or -demo")
	}

	srv := server.NewWithConfig(ix, server.Config{MaxConcurrent: *maxConc, Parallelism: *parallelism})
	fmt.Printf("irserver: %d tuples, %d dimensions, listening on %s (max-concurrent=%d parallelism=%d)\n",
		ix.NumTuples(), ix.Dim(), *addr, *maxConc, *parallelism)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
