// Command irproxy is the smart routing front door for a replicated
// irserver cluster. It discovers the topology through the nodes' GET
// /cluster beacons, routes writes (/update, /delete) to the current
// confirmed primary and reads to the least-lagged ready standby, and
// rides out a failover transparently: on a 409 referral it follows the
// Location header to the new primary, on a 503 or a dead connection it
// re-resolves the topology and retries with capped, deterministically
// jittered backoff.
//
// The proxy is stateless — kill -9 it and restart; everything it knows
// is rediscovered from -nodes within one probe. Run several behind a
// TCP balancer for proxy redundancy.
//
// Endpoints served by the proxy itself: GET /healthz (proxy liveness,
// independent of cluster health) and GET /topology (the current
// discovered view). Everything else is forwarded.
//
// Usage:
//
//	irproxy -addr :8000 -nodes http://db1:8080,http://db2:8080,http://db3:8080
//	curl -s localhost:8000/update -d '{"ops":[{"tuple":[{"dim":3,"val":0.9}]}]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", ":8000", "proxy listen address")
		nodes       = flag.String("nodes", "", "comma-separated cluster member HTTP base URLs (seeds for topology discovery)")
		id          = flag.String("id", "", "proxy identity seeding the deterministic retry jitter (default: the node list)")
		maxRetries  = flag.Int("max-retries", 8, "retry attempts per request before answering 502")
		retryBase   = flag.Duration("retry-base", 50*time.Millisecond, "initial retry backoff (doubles per attempt)")
		retryCap    = flag.Duration("retry-cap", 2*time.Second, "retry backoff ceiling")
		topologyTTL = flag.Duration("topology-ttl", time.Second, "how long a discovered topology is trusted before re-probing")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "per-attempt upstream request timeout")
		shutdownTo  = flag.Duration("shutdown-timeout", 10*time.Second, "how long graceful shutdown waits for in-flight requests")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (off when empty)")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("irproxy %s (commit %s)\n", obs.Version, obs.Commit)
		return
	}
	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	seeds := splitList(*nodes)
	if len(seeds) == 0 {
		log.Fatal("irproxy: -nodes needs at least one cluster member URL")
	}
	c, err := client.New(client.Config{
		Seeds:       seeds,
		ID:          *id,
		MaxRetries:  *maxRetries,
		RetryBase:   *retryBase,
		RetryCap:    *retryCap,
		TopologyTTL: *topologyTTL,
		HTTPClient:  &http.Client{Timeout: *reqTimeout},
	})
	if err != nil {
		log.Fatalf("irproxy: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	n := c.Refresh(ctx)
	fmt.Printf("irproxy: listening on %s, %d of %d seed nodes answering\n", *addr, n, len(seeds))

	httpSrv := &http.Server{Addr: *addr, Handler: obs.AccessLog(client.NewProxy(c).Handler())}
	obs.Log().Info("starting", "version", obs.Version, "commit", obs.Commit, "addr", *addr)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		log.Fatalf("irproxy: %v", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("irproxy: shutting down, draining in-flight requests")
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTo)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			httpSrv.Close()
		} else {
			obs.Log().Warn("shutdown_error", "error", err.Error())
		}
	}
	fmt.Println("irproxy: bye")
}

// servePprof exposes net/http/pprof on its own listener; explicit
// registrations keep http.DefaultServeMux untouched.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if err := http.ListenAndServe(addr, mux); err != nil {
		obs.Log().Error("pprof_listen_failed", "addr", addr, "error", err.Error())
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
