// Command irproxy is the smart routing front door for a replicated
// irserver cluster. It discovers the topology through the nodes' GET
// /cluster beacons, routes writes (/update, /delete) to the current
// confirmed primary and reads to the least-lagged ready standby, and
// rides out a failover transparently: on a 409 referral it follows the
// Location header to the new primary, on a 503 or a dead connection it
// re-resolves the topology and retries with capped, deterministically
// jittered backoff.
//
// The proxy is stateless — kill -9 it and restart; everything it knows
// is rediscovered from -nodes within one probe. Run several behind a
// TCP balancer for proxy redundancy.
//
// Endpoints served by the proxy itself: GET /healthz (proxy liveness,
// independent of cluster health) and GET /topology (the current
// discovered view). Everything else is forwarded.
//
// With -shard-map the proxy is instead the scatter-gather COORDINATOR
// for a range-partitioned dataset (irgen -shards): it loads the
// shards.json manifest, builds one cluster-aware client per shard group
// from -shard-nodes (comma-separated groups; members of a group — a
// shard's primary plus standbys — joined by ';'), fans /topk and
// /analyze out to every shard, routes /update and /delete batches to
// the owning shards, and merges the answers bit-identically to a
// single node over the union (docs/sharding.md). A shard failure fails
// the query closed unless -allow-partial, which degrades to a flagged
// partial answer (X-Partial header). Per-shard fan-out counters are on
// GET /metrics.
//
// Usage:
//
//	irproxy -addr :8000 -nodes http://db1:8080,http://db2:8080,http://db3:8080
//	curl -s localhost:8000/update -d '{"ops":[{"tuple":[{"dim":3,"val":0.9}]}]}'
//	irproxy -addr :8000 -shard-map /data/st/shards.json \
//	        -shard-nodes 'http://s0:8080;http://s0b:8080,http://s1:8080'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/shard"
)

func main() {
	var (
		addr         = flag.String("addr", ":8000", "proxy listen address")
		nodes        = flag.String("nodes", "", "comma-separated cluster member HTTP base URLs (seeds for topology discovery)")
		id           = flag.String("id", "", "proxy identity seeding the deterministic retry jitter (default: the node list)")
		maxRetries   = flag.Int("max-retries", 8, "retry attempts per request before answering 502")
		retryBase    = flag.Duration("retry-base", 50*time.Millisecond, "initial retry backoff (doubles per attempt)")
		retryCap     = flag.Duration("retry-cap", 2*time.Second, "retry backoff ceiling")
		topologyTTL  = flag.Duration("topology-ttl", time.Second, "how long a discovered topology is trusted before re-probing")
		reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "per-attempt upstream request timeout")
		shutdownTo   = flag.Duration("shutdown-timeout", 10*time.Second, "how long graceful shutdown waits for in-flight requests")
		shardMap     = flag.String("shard-map", "", "coordinator mode: shards.json manifest of the range partition (irgen -shards); requires -shard-nodes")
		shardNodes   = flag.String("shard-nodes", "", "per-shard seed groups, ','-separated in shard order; members within a group ';'-separated")
		allowPartial = flag.Bool("allow-partial", false, "coordinator mode: merge surviving shards on a shard failure (flagged X-Partial) instead of failing closed")
		shardRetries = flag.Int("shard-retries", 1, "coordinator mode: read RPC relaunches per shard after a timeout or error (mutations never retry)")
		shardTimeout = flag.Duration("shard-timeout", 0, "coordinator mode: per-attempt shard RPC bound (0 = bounded by the request context only)")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (off when empty)")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("irproxy %s (commit %s)\n", obs.Version, obs.Commit)
		return
	}
	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	clientCfg := client.Config{
		ID:          *id,
		MaxRetries:  *maxRetries,
		RetryBase:   *retryBase,
		RetryCap:    *retryCap,
		TopologyTTL: *topologyTTL,
		HTTPClient:  &http.Client{Timeout: *reqTimeout},
	}

	var handler http.Handler
	switch {
	case *shardMap != "":
		groups := splitGroups(*shardNodes)
		if len(groups) == 0 {
			log.Fatal("irproxy: -shard-map needs -shard-nodes (one ','-separated seed group per shard)")
		}
		mf, err := shard.LoadManifest(*shardMap)
		if err != nil {
			log.Fatalf("irproxy: %v", err)
		}
		mp, err := mf.Map()
		if err != nil {
			log.Fatalf("irproxy: %v", err)
		}
		if len(groups) != mp.NumShards() {
			log.Fatalf("irproxy: -shard-nodes lists %d groups, manifest has %d shards", len(groups), mp.NumShards())
		}
		backends, err := shard.NewHTTPBackends(groups, clientCfg)
		if err != nil {
			log.Fatalf("irproxy: %v", err)
		}
		coord, err := shard.New(mp, backends, shard.Config{
			AllowPartial:   *allowPartial,
			MaxRetries:     *shardRetries,
			AttemptTimeout: *shardTimeout,
		})
		if err != nil {
			log.Fatalf("irproxy: %v", err)
		}
		handler = shard.NewHandler(coord)
		fmt.Printf("irproxy: shard coordinator on %s over %d shards (%d tuples, %d dims), allow-partial=%v\n",
			*addr, mp.NumShards(), mf.N, mf.M, *allowPartial)

	default:
		seeds := splitList(*nodes)
		if len(seeds) == 0 {
			log.Fatal("irproxy: -nodes needs at least one cluster member URL")
		}
		clientCfg.Seeds = seeds
		c, err := client.New(clientCfg)
		if err != nil {
			log.Fatalf("irproxy: %v", err)
		}
		n := c.Refresh(ctx)
		fmt.Printf("irproxy: listening on %s, %d of %d seed nodes answering\n", *addr, n, len(seeds))
		handler = client.NewProxy(c).Handler()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: obs.AccessLog(handler)}
	obs.Log().Info("starting", "version", obs.Version, "commit", obs.Commit, "addr", *addr)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		log.Fatalf("irproxy: %v", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("irproxy: shutting down, draining in-flight requests")
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTo)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			httpSrv.Close()
		} else {
			obs.Log().Warn("shutdown_error", "error", err.Error())
		}
	}
	fmt.Println("irproxy: bye")
}

// servePprof exposes net/http/pprof on its own listener; explicit
// registrations keep http.DefaultServeMux untouched.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if err := http.ListenAndServe(addr, mux); err != nil {
		obs.Log().Error("pprof_listen_failed", "addr", addr, "error", err.Error())
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// splitGroups parses -shard-nodes: groups ','-separated in shard order,
// members within a group (a shard's primary + standbys) ';'-separated.
func splitGroups(s string) [][]string {
	var out [][]string
	for _, g := range strings.Split(s, ",") {
		var members []string
		for _, m := range strings.Split(g, ";") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, m)
			}
		}
		if len(members) > 0 {
			out = append(out, members)
		}
	}
	return out
}
