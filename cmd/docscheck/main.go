// Command docscheck is the CI documentation linter: it fails when the
// markdown docs drift from the code they describe.
//
// Four checks, over README.md and docs/*.md:
//
//  1. Cross-references: every relative markdown link [text](path)
//     must point at a file that exists (anchors are stripped;
//     absolute URLs are ignored).
//  2. Flags: every command-line flag mentioned in inline code
//     (`-flag` or `-flag=value` inside single backticks, outside
//     fenced code blocks) must exist in the source of cmd/irserver
//     or cmd/irproxy for the docs/ files (the operator docs cover
//     both daemons), or in any cmd/* main for the README.
//     Fenced blocks are exempt — they hold full shell transcripts
//     whose tokens (curl options, jq filters) are not flag claims.
//  3. Analyzer parity: the analyzer table of docs/static-analysis.md
//     must list exactly the analyzers registered in internal/analysis.
//  4. Metric parity: the catalogue of docs/observability.md must list
//     exactly the metric names registered through obs.New* in
//     internal/ (both directions — phantom rows and missing rows).
//
// Usage: go run ./cmd/docscheck [-root DIR]   (default: the repo root)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var (
	// flagDefRe matches a std flag definition — on the package or on a
	// FlagSet (irlint parses into one) — and captures the flag's name.
	flagDefRe = regexp.MustCompile(`(?:flag|fs)\.(?:String|Bool|Int|Int64|Uint|Uint64|Float64|Duration)\(\s*"([^"]+)"`)
	// inlineCodeRe captures single-backtick inline code spans.
	inlineCodeRe = regexp.MustCompile("`([^`]+)`")
	// linkRe captures markdown link targets.
	linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)]+)\)`)
	// flagTokenRe decides whether one word inside inline code claims a
	// command-line flag: -name or -name=value, name starting with a
	// letter (so "kill -9" and negative numbers never match).
	flagTokenRe = regexp.MustCompile(`^-([a-zA-Z][a-zA-Z0-9-]*)(?:=\S*)?$`)
	// analyzerDefRe captures a registered analyzer's Name literal in
	// internal/analysis.
	analyzerDefRe = regexp.MustCompile(`Name:\s*"([a-z0-9]+)"`)
	// analyzerDocRe captures an analyzer row of the static-analysis
	// doc's table (first cell, backticked name).
	analyzerDocRe = regexp.MustCompile("^\\|\\s*`([a-z0-9]+)`\\s*\\|")
	// metricDefRe captures the name literal of an obs metric
	// registration (the obsreg analyzer guarantees names ARE literals,
	// which is what makes this static cross-check possible).
	metricDefRe = regexp.MustCompile(`obs\.New(?:Counter|CounterVec|Gauge|GaugeFunc|LabeledGaugeFunc|Histogram|HistogramVec)\(\s*"(ir_[a-z0-9_]+)"`)
	// metricDocRe captures a metric row of the observability doc's
	// catalogue (first cell, backticked name).
	metricDocRe = regexp.MustCompile("^\\|\\s*`(ir_[a-z0-9_]+)`\\s*\\|")
)

// goToolFlags are inline-mentionable flags that belong to the go tool
// chain, not to our binaries.
var goToolFlags = map[string]bool{
	"race": true, "run": true, "bench": true, "benchmem": true,
	"benchtime": true, "count": true, "v": true, "short": true,
	"deps": true, "json": true, "tags": true, "fuzz": true,
	"fuzztime": true,
}

// collectFlags parses the flag definitions of one main package file.
func collectFlags(path string, into map[string]bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for _, m := range flagDefRe.FindAllStringSubmatch(string(raw), -1) {
		into[m[1]] = true
	}
	return nil
}

// checkAnalyzerParity cross-references the analyzer table of
// docs/static-analysis.md against the Analyzer definitions in
// internal/analysis: a documented analyzer that is not registered (or
// a registered one the doc does not list) is drift, the same way a
// phantom flag is.
func checkAnalyzerParity(root string) ([]string, error) {
	srcs, err := filepath.Glob(filepath.Join(root, "internal", "analysis", "*.go"))
	if err != nil || len(srcs) == 0 {
		return nil, fmt.Errorf("no internal/analysis sources found")
	}
	registered := map[string]bool{}
	for _, s := range srcs {
		if strings.HasSuffix(s, "_test.go") {
			continue
		}
		raw, err := os.ReadFile(s)
		if err != nil {
			return nil, err
		}
		for _, m := range analyzerDefRe.FindAllStringSubmatch(string(raw), -1) {
			registered[m[1]] = true
		}
	}
	docPath := filepath.Join(root, "docs", "static-analysis.md")
	raw, err := os.ReadFile(docPath)
	if err != nil {
		return nil, err
	}
	var problems []string
	documented := map[string]bool{}
	for i, line := range strings.Split(string(raw), "\n") {
		m := analyzerDocRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		documented[m[1]] = true
		if !registered[m[1]] {
			problems = append(problems, fmt.Sprintf("%s:%d: analyzer `%s` is documented but not defined in internal/analysis", docPath, i+1, m[1]))
		}
	}
	for name := range registered {
		if !documented[name] {
			problems = append(problems, fmt.Sprintf("%s: analyzer %q is registered but missing from the analyzer table", docPath, name))
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// checkMetricParity cross-references the metric catalogue of
// docs/observability.md against every obs.New* registration literal in
// internal/: a documented metric that is never registered, or a
// registered one the catalogue omits, is drift in either direction.
// internal/obs itself is exempt — its self-registrations
// (ir_build_info, the process clocks) are documented, but its tests
// register throwaway names.
func checkMetricParity(root string) ([]string, error) {
	registered := map[string]bool{}
	err := filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") ||
			strings.HasSuffix(path, "_test.go") || strings.Contains(path, "testdata") {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Per line, skipping // comments: obs.go's doc comment shows an
		// example registration that must not count as a real one.
		for _, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "//") {
				continue
			}
			for _, m := range metricDefRe.FindAllStringSubmatch(line, -1) {
				registered[m[1]] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The obs package's own registrations call the package-local
	// constructors (no obs. selector); add them from the build vars file.
	for _, name := range []string{"ir_build_info", "ir_process_start_time_seconds", "ir_process_uptime_seconds"} {
		registered[name] = true
	}
	docPath := filepath.Join(root, "docs", "observability.md")
	raw, err := os.ReadFile(docPath)
	if err != nil {
		return nil, err
	}
	var problems []string
	documented := map[string]bool{}
	for i, line := range strings.Split(string(raw), "\n") {
		m := metricDocRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		documented[m[1]] = true
		if !registered[m[1]] {
			problems = append(problems, fmt.Sprintf("%s:%d: metric `%s` is documented but never registered", docPath, i+1, m[1]))
		}
	}
	for name := range registered {
		if !documented[name] {
			problems = append(problems, fmt.Sprintf("%s: metric %q is registered but missing from the catalogue", docPath, name))
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// checkFile lints one markdown file; problems are returned as
// human-readable strings prefixed with file:line.
func checkFile(path string, known map[string]bool) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	dir := filepath.Dir(path)
	inFence := false
	for i, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		// Links resolve even inside inline code (they never are); flags
		// count only inside inline code.
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", path, i+1, m[1]))
			}
		}
		for _, span := range inlineCodeRe.FindAllStringSubmatch(line, -1) {
			for _, word := range strings.Fields(span[1]) {
				fm := flagTokenRe.FindStringSubmatch(word)
				if fm == nil {
					continue
				}
				name := fm[1]
				if !known[name] && !goToolFlags[name] {
					problems = append(problems, fmt.Sprintf("%s:%d: flag `-%s` is documented but not defined", path, i+1, name))
				}
			}
		}
	}
	return problems, nil
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	// Flag universes: the daemons' flags (irserver + irproxy) for the
	// docs/ tree (the operator docs document both), the union of every
	// command's flags for the README (which also shows irgen/irquery
	// usage).
	daemons := map[string]bool{}
	for _, cmd := range []string{"irserver", "irproxy"} {
		if err := collectFlags(filepath.Join(*root, "cmd", cmd, "main.go"), daemons); err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
	}
	union := map[string]bool{}
	mains, err := filepath.Glob(filepath.Join(*root, "cmd", "*", "main.go"))
	if err != nil || len(mains) == 0 {
		fmt.Fprintln(os.Stderr, "docscheck: no cmd/*/main.go found")
		os.Exit(2)
	}
	for _, m := range mains {
		if err := collectFlags(m, union); err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
	}

	targets := map[string]map[string]bool{
		filepath.Join(*root, "README.md"): union,
	}
	docs, _ := filepath.Glob(filepath.Join(*root, "docs", "*.md"))
	if len(docs) == 0 {
		fmt.Fprintln(os.Stderr, "docscheck: docs/*.md missing")
		os.Exit(1)
	}
	for _, d := range docs {
		targets[d] = daemons
	}
	// The static-analysis doc documents irlint (and the go test fuzz
	// flags), not the daemons; check it against every command's flags.
	targets[filepath.Join(*root, "docs", "static-analysis.md")] = union
	// The sharding doc walks the full deployment — irgen partitioning
	// and irbench measurement included — so it too gets the union.
	targets[filepath.Join(*root, "docs", "sharding.md")] = union
	// The spec and the operator guide are load-bearing: their absence
	// is a failure, not a skip.
	for _, required := range []string{"replication.md", "operations.md", "architecture.md", "static-analysis.md", "observability.md", "sharding.md"} {
		if _, err := os.Stat(filepath.Join(*root, "docs", required)); err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: required doc docs/%s missing\n", required)
			os.Exit(1)
		}
	}

	var all []string
	for path, known := range targets {
		problems, err := checkFile(path, known)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		all = append(all, problems...)
	}
	parity, err := checkAnalyzerParity(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	all = append(all, parity...)
	metrics, err := checkMetricParity(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	all = append(all, metrics...)
	if len(all) > 0 {
		for _, p := range all {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(all))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d files clean (%d daemon flags, %d total flags)\n", len(targets), len(daemons), len(union))
}
