// Command irquery answers a subspace top-k query over a persisted
// dataset and renders the paper's Fig. 1 interface: the ranked result,
// one slide-bar per query dimension with the immutable region marked,
// and the perturbation schedule (what the result becomes past each
// bound) for φ ≥ 0.
//
// Usage:
//
//	irgen -dataset kb -out /tmp/kb
//	irquery -data /tmp/kb -dims 3,17,42 -weights 0.8,0.5,0.6 -k 10 -phi 2
//	irquery -demo    # the paper's running example
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/fixture"
)

func main() {
	var (
		data    = flag.String("data", "", "dataset directory (tuples/lists files, optionally a checkpoint MANIFEST)")
		demo    = flag.Bool("demo", false, "run the paper's running example instead of -data")
		dimsF   = flag.String("dims", "", "comma-separated query dimensions")
		wF      = flag.String("weights", "", "comma-separated query weights in (0,1]")
		k       = flag.Int("k", 10, "result size")
		phi     = flag.Int("phi", 0, "tolerated perturbations per side")
		method  = flag.String("method", "cpt", "algorithm: scan | prune | thres | cpt")
		width   = flag.Int("width", 48, "slider width in characters")
		verbose = flag.Bool("v", false, "print metering")
		trace   = flag.Bool("trace", false, "print the TA execution trace (paper Fig. 2)")
		verify  = flag.Bool("verify", false, "verify dataset file checksums before querying")
	)
	flag.Parse()

	var eng *repro.Engine
	var q repro.Query
	var err error
	switch {
	case *demo:
		tuples, dq, dk := fixture.RunningExample()
		eng = repro.NewEngine(tuples, 2)
		q = dq
		if *k == 10 {
			*k = dk
		}
	case *data != "":
		// Directory-aware open: follow the checkpoint MANIFEST to the
		// live file generation and replay any wal.log, so irquery and a
		// durable irserver pointed at the same directory agree.
		eng, err = repro.OpenEngineDir(*data, 256, repro.EngineConfig{VerifyChecksums: *verify})
		if err != nil {
			fatal(err)
		}
		defer eng.Close()
		q, err = parseQuery(*dimsF, *wF)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -data DIR (with -dims/-weights) or -demo"))
	}

	m, err := parseMethod(*method)
	if err != nil {
		fatal(err)
	}
	if *trace {
		printTrace(eng, q, *k)
	}
	a, err := eng.Analyze(q, *k, repro.Options{Method: m, Phi: *phi})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("top-%d result (scores at the current weights):\n", *k)
	for rank, sc := range a.Result {
		fmt.Printf("  %2d. tuple %-8d score %.5f\n", rank+1, sc.ID, sc.Score)
	}
	fmt.Println("\nimmutable regions (one slide-bar per query dimension):")
	for _, reg := range a.Regions {
		fmt.Println("  " + repro.RenderSlider(q, reg, *width))
	}

	if *phi >= 0 {
		fmt.Println("\nperturbation schedule:")
		base := a.RankedIDs()
		for _, reg := range a.Regions {
			printSchedule(reg, base)
		}
	}
	if *verbose {
		met := a.Metrics
		fmt.Printf("\nmetering: evaluated=%d (per dim %.1f), phase1=%v phase2=%v phase3=%v, randReads=%d seqPages=%d, mem=%dB\n",
			met.Evaluated, met.EvaluatedPerDimAvg(), met.Phase1, met.Phase2, met.Phase3,
			met.RandReads, met.SeqPages, met.MemBytes)
	}
}

// printSchedule lists each bound's perturbation and the result past it.
func printSchedule(reg repro.Regions, base []int) {
	describe := func(p repro.Perturbation, i int, right bool) {
		kind := "reorder"
		if p.Entry {
			kind = "entry"
		}
		res, err := reg.ResultAfter(base, right, i)
		resStr := "?"
		if err == nil {
			resStr = fmt.Sprint(res)
		}
		fmt.Printf("    dim %-5d δ=%+.4f  %-7s tuple %d overtakes %d → result %s\n",
			reg.Dim, p.Delta, kind, p.Below, p.Above, resStr)
	}
	for i := len(reg.Left) - 1; i >= 0; i-- {
		describe(reg.Left[i], i, false)
	}
	if len(reg.Left) == 0 && len(reg.Right) == 0 {
		fmt.Printf("    dim %-5d result preserved across the whole weight domain\n", reg.Dim)
		return
	}
	for i := range reg.Right {
		describe(reg.Right[i], i, true)
	}
}

// printTrace renders the Fig. 2-style TA execution table.
func printTrace(eng *repro.Engine, q repro.Query, k int) {
	_, steps := eng.TopKTrace(q, k)
	fmt.Println("TA execution trace:")
	fmt.Printf("  %-4s %-10s %-18s %10s %-22s %s\n", "step", "access", "tuple", "threshold", "R(q)", "C(q)")
	for _, ts := range steps {
		tuple := "(seen)"
		if ts.Tuple >= 0 {
			tuple = fmt.Sprintf("%d (score %.4f)", ts.Tuple, ts.Score)
		}
		fmt.Printf("  %-4d L%-9d %-18s %10.4f %-22s %s\n",
			ts.Step, ts.Dim, tuple, ts.ThresholdScore,
			fmt.Sprint(ts.ResultIDs), fmt.Sprint(ts.CandidateIDs))
	}
	fmt.Println()
}

func parseQuery(dimsF, wF string) (repro.Query, error) {
	if dimsF == "" || wF == "" {
		return repro.Query{}, fmt.Errorf("need -dims and -weights")
	}
	ds := strings.Split(dimsF, ",")
	ws := strings.Split(wF, ",")
	if len(ds) != len(ws) {
		return repro.Query{}, fmt.Errorf("%d dims but %d weights", len(ds), len(ws))
	}
	dims := make([]int, len(ds))
	weights := make([]float64, len(ws))
	for i := range ds {
		var err error
		if dims[i], err = strconv.Atoi(strings.TrimSpace(ds[i])); err != nil {
			return repro.Query{}, fmt.Errorf("dim %q: %v", ds[i], err)
		}
		if weights[i], err = strconv.ParseFloat(strings.TrimSpace(ws[i]), 64); err != nil {
			return repro.Query{}, fmt.Errorf("weight %q: %v", ws[i], err)
		}
	}
	return repro.NewQuery(dims, weights)
}

func parseMethod(s string) (repro.Method, error) {
	switch strings.ToLower(s) {
	case "scan":
		return repro.Scan, nil
	case "prune":
		return repro.Prune, nil
	case "thres":
		return repro.Thres, nil
	case "cpt":
		return repro.CPT, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "irquery: %v\n", err)
	os.Exit(1)
}
