// Command irgen generates one of the three evaluation datasets (WSJ-like
// corpus, KB-like image features, ST correlated synthetic) and persists
// it in the library's on-disk format (tuples.dat + lists.dat), printing
// the structural statistics DESIGN.md pins for each.
//
// Usage:
//
//	irgen -dataset wsj -out /tmp/wsj -scale 1
//	irgen -dataset st -n 1000000        # paper-scale ST
//	irgen -dataset st -out /tmp/st -shards 4
//	                 # range-partitioned: shard-<i>/ dirs + shards.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/shard"
)

func main() {
	var (
		which  = flag.String("dataset", "wsj", "dataset to generate: wsj | kb | st")
		out    = flag.String("out", ".", "output directory for tuples.dat and lists.dat")
		scale  = flag.Float64("scale", 1, "cardinality multiplier over laptop defaults")
		n      = flag.Int("n", 0, "explicit cardinality (overrides -scale)")
		m      = flag.Int("m", 0, "explicit dimensionality (overrides -scale; st is fixed at 20)")
		seed   = flag.Int64("seed", 1, "generator seed")
		shards = flag.Int("shards", 0, "range-partition the output into this many shard-<i>/ directories plus a shards.json manifest (0 = single dataset)")
	)
	flag.Parse()

	sc := func(base int) int {
		if *n > 0 {
			return *n
		}
		v := int(float64(base) * *scale)
		if v < 100 {
			v = 100
		}
		return v
	}
	dim := func(base int) int {
		if *m > 0 {
			return *m
		}
		v := int(float64(base) * *scale)
		if v < 50 {
			v = 50
		}
		return v
	}

	var d *dataset.Dataset
	switch *which {
	case "wsj":
		d = dataset.GenerateWSJ(dataset.WSJConfig{Docs: sc(8000), Vocab: dim(12000), Seed: *seed})
	case "kb":
		d = dataset.GenerateKB(dataset.KBConfig{Images: sc(8000), Features: dim(1200), Seed: *seed})
	case "st":
		d = dataset.GenerateST(dataset.STConfig{N: sc(50000), Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "irgen: unknown dataset %q (want wsj, kb or st)\n", *which)
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "irgen: %v\n", err)
		os.Exit(1)
	}
	var written string
	if *shards > 1 {
		// Range-partitioned layout: shard i owns global ids
		// [bases[i], bases[i+1]) renumbered from 0, exactly the split
		// engine.OpenShard and the coordinator's Map expect.
		bases := shard.EvenBases(d.N(), *shards)
		for i := 0; i < *shards; i++ {
			lo := bases[i]
			hi := d.N()
			if i+1 < *shards {
				hi = bases[i+1]
			}
			sd := filepath.Join(*out, engine.ShardDirName(i))
			if err := os.MkdirAll(sd, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "irgen: %v\n", err)
				os.Exit(1)
			}
			part := dataset.New(d.Name, d.Tuples[lo:hi], d.M)
			if err := part.Save(filepath.Join(sd, "tuples.dat"), filepath.Join(sd, "lists.dat")); err != nil {
				fmt.Fprintf(os.Stderr, "irgen: %v\n", err)
				os.Exit(1)
			}
		}
		mp := filepath.Join(*out, "shards.json")
		if err := shard.WriteManifest(mp, shard.Manifest{Shards: *shards, N: d.N(), M: d.M, Bases: bases}); err != nil {
			fmt.Fprintf(os.Stderr, "irgen: %v\n", err)
			os.Exit(1)
		}
		written = fmt.Sprintf("%d shard dirs under %s, %s", *shards, *out, mp)
	} else {
		tp := filepath.Join(*out, "tuples.dat")
		lp := filepath.Join(*out, "lists.dat")
		if err := d.Save(tp, lp); err != nil {
			fmt.Fprintf(os.Stderr, "irgen: %v\n", err)
			os.Exit(1)
		}
		written = tp + ", " + lp
	}

	st := dataset.ComputeStats(d, rand.New(rand.NewSource(*seed)), 16)
	fmt.Printf("dataset   : %s\n", d.Name)
	fmt.Printf("tuples    : %d  (dim %d)\n", st.N, st.M)
	fmt.Printf("postings  : %d  (mean nnz %.1f)\n", st.Postings, st.MeanNNZ)
	fmt.Printf("lists     : max %d, median %d, gini %.2f\n", st.MaxListLen, st.MedListLen, st.GiniListLen)
	fmt.Printf("pair corr : %.3f\n", st.MeanPairCorr)
	fmt.Printf("written   : %s\n", written)
}
