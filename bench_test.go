// Benchmarks: one testing.B entry per evaluation figure of the paper
// (§7), plus ablations for the design choices DESIGN.md calls out. Each
// benchmark op is one full query analysis (TA + region computation) at a
// representative parameter point of the corresponding figure; the
// cmd/irbench tool regenerates the full series.
package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/geom"
	"repro/internal/lists"
	"repro/internal/server"
	"repro/internal/topk"
	"repro/internal/vec"
)

// benchEnv lazily builds the benchmark datasets once per process.
type benchEnv struct {
	once sync.Once
	wsj  *dataset.Dataset
	kb   *dataset.Dataset
	st   *dataset.Dataset
	wsjI *lists.MemIndex
	kbI  *lists.MemIndex
	stI  *lists.MemIndex
}

var env benchEnv

func (e *benchEnv) init() {
	e.once.Do(func() {
		e.wsj = dataset.GenerateWSJ(dataset.WSJConfig{Docs: 3000, Vocab: 4500, MeanTerms: 22, Seed: 101})
		e.kb = dataset.GenerateKB(dataset.KBConfig{Images: 3000, Features: 600, Seed: 102})
		e.st = dataset.GenerateST(dataset.STConfig{N: 20000, Seed: 103})
		e.wsjI = e.wsj.Index()
		e.kbI = e.kb.Index()
		e.stI = e.st.Index()
	})
}

// queriesFor pre-samples a deterministic workload.
func queriesFor(d *dataset.Dataset, qlen, k, n int, seed int64) []vec.Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vec.Query, 0, n)
	minDF := 3*k + 20
	for len(out) < n {
		q, err := d.SampleQuery(rng, qlen, minDF)
		if err != nil {
			minDF /= 2
			if minDF == 0 {
				panic(err)
			}
			continue
		}
		out = append(out, q)
	}
	return out
}

// measureEngine wraps an index in the unified execution layer with the
// answer cache off: figure benchmarks measure the algorithms, so cached
// answers must never stand in for computation.
func measureEngine(ix lists.Index) *engine.Engine {
	return engine.New(ix, engine.Config{MaxConcurrent: -1, CacheEntries: -1})
}

// benchCompute runs one figure point: per op, a fresh TA run plus the
// region computation with the given options.
func benchCompute(b *testing.B, ix lists.Index, queries []vec.Query, k int, opts core.Options) {
	b.Helper()
	b.ReportAllocs()
	eng := measureEngine(ix)
	evaluated := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		out, err := eng.Analyze(context.Background(), q, k, engine.Options{Options: opts})
		if err != nil {
			b.Fatal(err)
		}
		evaluated += out.Metrics.Evaluated
	}
	b.ReportMetric(float64(evaluated)/float64(b.N), "evaluated/op")
}

func perMethod(b *testing.B, run func(b *testing.B, opts core.Options)) {
	for _, m := range core.Methods {
		b.Run(m.String(), func(b *testing.B) {
			run(b, core.Options{Method: m})
		})
	}
}

// BenchmarkFig10 — WSJ, k=10, qlen=4 (the paper's Fig. 10 midpoint).
func BenchmarkFig10(b *testing.B) {
	env.init()
	qs := queriesFor(env.wsj, 4, 10, 16, 201)
	perMethod(b, func(b *testing.B, opts core.Options) {
		benchCompute(b, env.wsjI, qs, 10, opts)
	})
}

// BenchmarkFig11 — ST correlated data, k=10, qlen=4 (Fig. 11).
func BenchmarkFig11(b *testing.B) {
	env.init()
	qs := queriesFor(env.st, 4, 10, 16, 202)
	perMethod(b, func(b *testing.B, opts core.Options) {
		benchCompute(b, env.stI, qs, 10, opts)
	})
}

// BenchmarkFig12 — KB features, k=10, qlen=16 (Fig. 12 midpoint).
func BenchmarkFig12(b *testing.B) {
	env.init()
	qs := queriesFor(env.kb, 16, 10, 16, 203)
	perMethod(b, func(b *testing.B, opts core.Options) {
		benchCompute(b, env.kbI, qs, 10, opts)
	})
}

// BenchmarkFig13 — k sweep at qlen=4 (Fig. 13): k=40 on both datasets.
func BenchmarkFig13(b *testing.B) {
	env.init()
	for _, ds := range []struct {
		name string
		d    *dataset.Dataset
		ix   *lists.MemIndex
	}{{"WSJ", env.wsj, env.wsjI}, {"ST", env.st, env.stI}} {
		qs := queriesFor(ds.d, 4, 40, 8, 204)
		for _, m := range core.Methods {
			b.Run(fmt.Sprintf("%s/%s", ds.name, m), func(b *testing.B) {
				benchCompute(b, ds.ix, qs, 40, core.Options{Method: m})
			})
		}
	}
}

// BenchmarkFig14 — φ=20 on WSJ, k=10, qlen=4 (Fig. 14 midpoint).
func BenchmarkFig14(b *testing.B) {
	env.init()
	qs := queriesFor(env.wsj, 4, 10, 8, 205)
	perMethod(b, func(b *testing.B, opts core.Options) {
		opts.Phi = 20
		benchCompute(b, env.wsjI, qs, 10, opts)
	})
}

// BenchmarkFig15 — one-off vs iterative at φ=10 for Prune and CPT.
func BenchmarkFig15(b *testing.B) {
	env.init()
	qs := queriesFor(env.wsj, 4, 10, 8, 206)
	for _, m := range []core.Method{core.MethodPrune, core.MethodCPT} {
		for _, iter := range []bool{false, true} {
			name := m.String() + "/oneoff"
			if iter {
				name = m.String() + "/iterative"
			}
			b.Run(name, func(b *testing.B) {
				benchCompute(b, env.wsjI, qs, 10, core.Options{Method: m, Phi: 10, Iterative: iter})
			})
		}
	}
}

// BenchmarkFig16 — composition-only perturbations, WSJ, k=10, qlen=4.
func BenchmarkFig16(b *testing.B) {
	env.init()
	qs := queriesFor(env.wsj, 4, 10, 16, 207)
	perMethod(b, func(b *testing.B, opts core.Options) {
		opts.CompositionOnly = true
		benchCompute(b, env.wsjI, qs, 10, opts)
	})
}

// BenchmarkTA — the substrate alone: TA cost per query under both
// probing policies (ablation 1 of DESIGN.md).
func BenchmarkTA(b *testing.B) {
	env.init()
	qs := queriesFor(env.wsj, 4, 10, 16, 208)
	for _, policy := range []topk.ProbePolicy{topk.RoundRobin, topk.BestList} {
		b.Run(policy.String(), func(b *testing.B) {
			b.ReportAllocs()
			accesses := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ta := topk.New(env.wsjI, qs[i%len(qs)], 10, policy)
				ta.Run()
				accesses += ta.SortedAccesses()
			}
			b.ReportMetric(float64(accesses)/float64(b.N), "sorted-accesses/op")
		})
	}
}

// BenchmarkAblationProbing — end-to-end CPT cost under the two TA
// probing policies.
func BenchmarkAblationProbing(b *testing.B) {
	env.init()
	qs := queriesFor(env.wsj, 4, 10, 16, 209)
	eng := measureEngine(env.wsjI)
	for _, policy := range []topk.ProbePolicy{topk.RoundRobin, topk.BestList} {
		b.Run(policy.String(), func(b *testing.B) {
			b.ReportAllocs()
			opts := engine.Options{
				Options:         core.Options{Method: core.MethodCPT},
				RoundRobinProbe: policy == topk.RoundRobin,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Analyze(context.Background(), qs[i%len(qs)], 10, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSchedule — thresholding probe schedule (ablation 2 of
// DESIGN.md): round-robin vs score-biased list pulls in Thres/CPT.
func BenchmarkAblationSchedule(b *testing.B) {
	env.init()
	qs := queriesFor(env.kb, 8, 10, 16, 214)
	for _, sched := range []core.Schedule{core.ScheduleRoundRobin, core.ScheduleScoreBiased} {
		b.Run(sched.String(), func(b *testing.B) {
			benchCompute(b, env.kbI, qs, 10, core.Options{Method: core.MethodCPT, Schedule: sched})
		})
	}
}

// BenchmarkAblationBufferPool — disk-index scan cost versus buffer-pool
// size (ablation 4 of DESIGN.md).
func BenchmarkAblationBufferPool(b *testing.B) {
	env.init()
	dir := b.TempDir()
	tp, lp := filepath.Join(dir, "t.dat"), filepath.Join(dir, "l.dat")
	small := dataset.GenerateWSJ(dataset.WSJConfig{Docs: 1500, Vocab: 2000, MeanTerms: 15, Seed: 110})
	if err := small.Save(tp, lp); err != nil {
		b.Fatal(err)
	}
	qs := queriesFor(small, 4, 10, 8, 210)
	for _, pool := range []int{0, 64, 4096} {
		b.Run(fmt.Sprintf("pool%d", pool), func(b *testing.B) {
			ix, err := lists.OpenDiskIndex(tp, lp, pool)
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			eng := measureEngine(ix)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Analyze(context.Background(), qs[i%len(qs)], 10, engine.Options{Options: core.Options{Method: core.MethodCPT}}); err != nil {
					b.Fatal(err)
				}
			}
			seq, rnd, _ := ix.Stats().Snapshot()
			b.ReportMetric(float64(seq)/float64(b.N), "seq-pages/op")
			b.ReportMetric(float64(rnd)/float64(b.N), "rand-reads/op")
		})
	}
}

// BenchmarkCandidateStore — on-the-fly pruning store throughput
// (ablation 3: the §5.1 memory optimization).
func BenchmarkCandidateStore(b *testing.B) {
	rng := rand.New(rand.NewSource(111))
	cands := make([]topk.Scored, 4096)
	for i := range cands {
		proj := []float64{0, 0, 0, 0}
		mask := uint64(0)
		for d := 0; d < 4; d++ {
			if rng.Float64() < 0.4 {
				proj[d] = rng.Float64()
				mask |= 1 << uint(d)
			}
		}
		if mask == 0 {
			proj[0] = rng.Float64()
			mask = 1
		}
		cands[i] = topk.Scored{ID: i, Score: rng.Float64(), Proj: proj, NZMask: mask}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := core.NewCandidateStore(4, 2)
		for _, cd := range cands {
			store.Add(cd)
		}
		if store.Size() == 0 {
			b.Fatal("empty store")
		}
	}
}

// BenchmarkSweep — the arrangement sweep over k result lines (the φ>0
// Phase-1 primitive).
func BenchmarkSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(112))
	lines := make([]geom.Line, 80)
	for i := range lines {
		lines[i] = geom.Line{A: rng.Float64(), B: rng.Float64(), ID: i}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := geom.FirstCrossings(lines, 0, 1, 41); len(got) == 0 {
			b.Fatal("no crossings")
		}
	}
}

// BenchmarkKthEnvelope — boundary recomputation cost (φ>0 Phase 2).
func BenchmarkKthEnvelope(b *testing.B) {
	rng := rand.New(rand.NewSource(113))
	lines := make([]geom.Line, 60)
	for i := range lines {
		lines[i] = geom.Line{A: rng.Float64(), B: rng.Float64(), ID: i}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := geom.KthEnvelope(lines, 10, 0, 1)
		if len(env.Lines) == 0 {
			b.Fatal("empty envelope")
		}
	}
}

// BenchmarkParallelCompute — the forked per-dimension path of CPT at
// parallelism 1 (isolated but single-threaded) and NumCPU, against the
// paper-literal sequential pipeline (p0) as reference. qlen=8 gives the
// fan-out enough dimensions to spread.
func BenchmarkParallelCompute(b *testing.B) {
	env.init()
	qs := queriesFor(env.kb, 8, 10, 16, 215)
	for _, p := range []int{0, 1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			benchCompute(b, env.kbI, qs, 10, core.Options{Method: core.MethodCPT, Parallelism: p})
		})
	}
}

// BenchmarkServerAnalyzeParallel — the full HTTP /analyze path under
// concurrent load (b.RunParallel drives one goroutine per GOMAXPROCS by
// default). The throughput here is what the server-wide mutex used to
// serialize.
func BenchmarkServerAnalyzeParallel(b *testing.B) {
	env.init()
	// Cache off: this measures the compute path under load; the cached
	// serving rate is BenchmarkCacheAnalyze's subject.
	srv := server.NewWithConfig(env.wsjI, server.Config{MaxConcurrent: 4 * runtime.NumCPU(), CacheEntries: -1})
	h := srv.Handler()
	qs := queriesFor(env.wsj, 4, 10, 16, 216)
	bodies := make([][]byte, len(qs))
	for i, q := range qs {
		raw, err := json.Marshal(server.QueryRequest{Dims: q.Dims, Weights: q.Weights, K: 10, Method: "cpt"})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = raw
	}
	b.ReportAllocs()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)) % len(bodies)
			req := httptest.NewRequest(http.MethodPost, "/analyze", bytes.NewReader(bodies[i]))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				// FailNow is not legal off the benchmark goroutine.
				b.Errorf("status %d: %s", rec.Code, rec.Body.Bytes())
				return
			}
		}
	})
}

// BenchmarkRunningExample — end-to-end on the paper's 4-tuple example;
// a floor measurement for per-query overhead.
func BenchmarkRunningExample(b *testing.B) {
	tuples, q, k := fixture.RunningExample()
	eng := measureEngine(lists.NewMemIndex(tuples, 2))
	opts := engine.Options{Options: core.Options{Method: core.MethodCPT}, RoundRobinProbe: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(context.Background(), q, k, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheAnalyze — the answer cache's headline economics: an
// /analyze-shaped repeat query recomputed from scratch versus served
// from the immutable-region cache (exact-anchor hit, zero index I/O).
func BenchmarkCacheAnalyze(b *testing.B) {
	env.init()
	qs := queriesFor(env.wsj, 4, 10, 16, 217)
	opts := engine.Options{Options: core.Options{Method: core.MethodCPT, Phi: 1}}
	b.Run("recompute", func(b *testing.B) {
		eng := measureEngine(env.wsjI)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Analyze(context.Background(), qs[i%len(qs)], 10, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		eng := engine.New(env.wsjI, engine.Config{MaxConcurrent: -1})
		for _, q := range qs { // prime the cache
			if _, err := eng.Analyze(context.Background(), q, 10, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, err := eng.Analyze(context.Background(), qs[i%len(qs)], 10, opts)
			if err != nil {
				b.Fatal(err)
			}
			if a.Source != engine.SourceCache {
				b.Fatalf("source %v, want cache hit", a.Source)
			}
		}
	})
}

// BenchmarkCacheTopK — region-certified /topk serving: weights nudged
// inside a cached analysis' immutable regions, answered by rescoring
// the cached projections.
func BenchmarkCacheTopK(b *testing.B) {
	env.init()
	qs := queriesFor(env.wsj, 4, 10, 16, 218)
	eng := engine.New(env.wsjI, engine.Config{MaxConcurrent: -1})
	for _, q := range qs {
		if _, err := eng.Analyze(context.Background(), q, 10, engine.Options{Options: core.Options{Method: core.MethodCPT}}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.TopK(context.Background(), qs[i%len(qs)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchAnalyze — /batchanalyze-shaped execution: a batch of
// repeated-weight queries (the §1 refinement scenario at fleet scale),
// de-duplicated and cache-accelerated, versus the same queries issued
// one by one with the cache off.
func BenchmarkBatchAnalyze(b *testing.B) {
	env.init()
	qs := queriesFor(env.wsj, 4, 10, 8, 219)
	items := make([]engine.BatchItem, 0, 64)
	for i := 0; i < 64; i++ { // 8 distinct queries × 8 repeats
		items = append(items, engine.BatchItem{
			Q: qs[i%len(qs)], K: 10,
			Opts: engine.Options{Options: core.Options{Method: core.MethodCPT}},
		})
	}
	b.Run("sequential-nocache", func(b *testing.B) {
		eng := measureEngine(env.wsjI)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, it := range items {
				if _, err := eng.Analyze(context.Background(), it.Q, it.K, it.Opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		eng := engine.New(env.wsjI, engine.Config{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, res := range eng.AnalyzeBatch(context.Background(), items) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
}

// BenchmarkBatchTopK — the fused shared-scan economics: 16 ranked
// queries over ONE subspace (the /batchtopk shape) answered by a single
// fused scan scoring all 16 weight vectors per posting block, versus
// sixteen sequential /topk executions, each paying its own sorted
// accesses, tuple fetches and projections.
func BenchmarkBatchTopK(b *testing.B) {
	env.init()
	base := queriesFor(env.kb, 16, 10, 1, 220)[0]
	rng := rand.New(rand.NewSource(221))
	items := make([]engine.TopKItem, 16)
	for i := range items {
		q := base.Clone()
		for j := range q.Weights {
			q.Weights[j] = 0.05 + 0.95*rng.Float64()
		}
		items[i] = engine.TopKItem{Q: q, K: 10}
	}
	b.Run("sequential", func(b *testing.B) {
		eng := measureEngine(env.kbI)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, it := range items {
				if _, _, err := eng.TopK(context.Background(), it.Q, it.K); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fused", func(b *testing.B) {
		eng := measureEngine(env.kbI)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range eng.TopKBatch(context.Background(), items) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
}

// mutationBenchSetup builds a private engine (mutations must not leak
// into the shared benchmark datasets) with a primed cache: nq anchors
// over random subspaces, plus one negligible "victim" tuple whose
// updates provably survive every cached certificate.
func mutationBenchSetup(b *testing.B, nq int) (*engine.Engine, []vec.Query, int, int) {
	b.Helper()
	rng := rand.New(rand.NewSource(271))
	cs := fixture.RandCase(rng, 4000, 24, 4, 10)
	eng := engine.New(lists.NewMemIndex(cs.Tuples, cs.M), engine.Config{MaxConcurrent: -1})

	var tinyEntries []vec.Entry
	for d := 0; d < cs.M; d++ {
		tinyEntries = append(tinyEntries, vec.Entry{Dim: d, Val: 0.01})
	}
	res, err := eng.Apply([]engine.Op{{Kind: engine.OpInsert, Tuple: vec.MustSparse(tinyEntries...)}})
	if err != nil {
		b.Fatalf("victim insert: %v", err)
	}
	if res.Results[0].Err != nil {
		b.Fatalf("victim insert op: %v", res.Results[0].Err)
	}
	victim := res.Results[0].ID

	queries := make([]vec.Query, 0, nq)
	for len(queries) < nq {
		dims := rng.Perm(cs.M)[:4]
		weights := make([]float64, 4)
		for i := range weights {
			weights[i] = 0.05 + 0.95*rng.Float64()
		}
		queries = append(queries, vec.MustQuery(dims, weights))
	}
	for _, q := range queries {
		if _, err := eng.Analyze(context.Background(), q, cs.K, engine.Options{Options: core.Options{Method: core.MethodCPT}}); err != nil {
			b.Fatal(err)
		}
	}
	return eng, queries, cs.K, victim
}

// BenchmarkApplyInvalidation — the write path's certificate economics:
// one surviving update checked against a cache of 64 anchors. The
// per-entry check is closed-form arithmetic over cached projections
// (O(k·qlen) flops, zero index I/O), so the whole pass stays in the
// microsecond range.
func BenchmarkApplyInvalidation(b *testing.B) {
	eng, _, _, victim := mutationBenchSetup(b, 64)
	var tinyA, tinyB []vec.Entry
	for d := 0; d < 24; d++ {
		tinyA = append(tinyA, vec.Entry{Dim: d, Val: 0.01})
		tinyB = append(tinyB, vec.Entry{Dim: d, Val: 0.011})
	}
	payload := []vec.Sparse{vec.MustSparse(tinyA...), vec.MustSparse(tinyB...)}
	checked := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Apply([]engine.Op{{Kind: engine.OpUpdate, ID: victim, Tuple: payload[i%2]}})
		if err != nil {
			b.Fatal(err)
		}
		if res.CacheEvicted != 0 {
			b.Fatalf("victim update evicted %d entries", res.CacheEvicted)
		}
		checked += res.CacheChecked
	}
	b.ReportMetric(float64(checked)/float64(b.N), "entries-checked/op")
}

// BenchmarkCacheTopKAfterUpdate — surviving entries keep their serving
// speed: after an unrelated update, region-certified /topk answers are
// still produced from cached projections at zero index I/O.
func BenchmarkCacheTopKAfterUpdate(b *testing.B) {
	eng, queries, k, victim := mutationBenchSetup(b, 64)
	var tiny []vec.Entry
	for d := 0; d < 24; d++ {
		tiny = append(tiny, vec.Entry{Dim: d, Val: 0.009})
	}
	res, err := eng.Apply([]engine.Op{{Kind: engine.OpUpdate, ID: victim, Tuple: vec.MustSparse(tiny...)}})
	if err != nil || res.CacheEvicted != 0 {
		b.Fatalf("setup update: err %v evicted %d", err, res.CacheEvicted)
	}
	seq0, rnd0, _ := eng.Stats().Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, src, err := eng.TopK(context.Background(), queries[i%len(queries)], k)
		if err != nil {
			b.Fatal(err)
		}
		if src != engine.SourceCacheRegion {
			b.Fatalf("source %v, want region hit from a surviving entry", src)
		}
	}
	b.StopTimer()
	if seq1, rnd1, _ := eng.Stats().Snapshot(); seq1 != seq0 || rnd1 != rnd0 {
		b.Fatalf("surviving serve touched the index: seq %d→%d rand %d→%d", seq0, seq1, rnd0, rnd1)
	}
}
