// Hotels: sensitivity analysis for multi-criteria decision making — the
// paper's §1 second motivating application (the tripadvisor scenario).
//
// A traveler scores hotels on price value, cleanliness and service with
// personal weights and shortlists the top 5. The immutable regions
// profile how robust that shortlist is to each stated preference: a
// narrow region means the recommendation is sensitive to that criterion.
// With φ=2 the program also reports the next two shortlists past each
// bound, so the traveler sees exactly what trade-off each weight change
// buys.
//
// Run: go run ./examples/hotels
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro"
)

// criteria indices in the hotel attribute space.
const (
	attrPrice   = iota // price value: 1 = great deal
	attrClean          // cleanliness score from reviews
	attrLoc            // location convenience
	attrService        // staff/service score
	attrWifi           // amenity score
	numAttrs
)

var attrName = [numAttrs]string{"price", "cleanliness", "location", "service", "wifi"}

func main() {
	hotels, names := makeHotels()
	eng := repro.NewEngine(hotels, numAttrs)

	// The traveler cares about price, cleanliness and service.
	q, err := repro.NewQuery(
		[]int{attrPrice, attrClean, attrService},
		[]float64{0.9, 0.7, 0.4},
	)
	if err != nil {
		log.Fatal(err)
	}

	const k, phi = 5, 2
	a, err := eng.Analyze(q, k, repro.Options{Method: repro.CPT, Phi: phi})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("current shortlist:")
	for rank, sc := range a.Result {
		fmt.Printf("  %d. %-22s score %.3f\n", rank+1, names[sc.ID], sc.Score)
	}

	fmt.Println("\nsensitivity per criterion (wider bar = more robust):")
	type sens struct {
		reg   repro.Regions
		width float64
	}
	var rows []sens
	for _, reg := range a.Regions {
		rows = append(rows, sens{reg, reg.Hi - reg.Lo})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].width < rows[j].width })
	for _, row := range rows {
		fmt.Printf("  %-12s %s\n", attrName[row.reg.Dim], repro.RenderSlider(q, row.reg, 36))
	}
	fmt.Printf("\nmost sensitive criterion: %s — a %.3f-wide band preserves the shortlist.\n",
		attrName[rows[0].reg.Dim], rows[0].width)

	fmt.Printf("\nwhat-if schedule (up to %d changes per direction):\n", phi+1)
	base := a.RankedIDs()
	for _, reg := range a.Regions {
		for i, p := range reg.Right {
			next, err := reg.ResultAfter(base, true, i)
			if err != nil {
				break
			}
			fmt.Printf("  raise %-12s by > %+.4f → %v\n", attrName[reg.Dim], p.Delta, nameList(names, next))
		}
		for i, p := range reg.Left {
			next, err := reg.ResultAfter(base, false, i)
			if err != nil {
				break
			}
			fmt.Printf("  lower %-12s by > %+.4f → %v\n", attrName[reg.Dim], p.Delta, nameList(names, next))
		}
	}
}

// makeHotels fabricates 40 hotels with plausible trade-offs: cheap ones
// skimp on service, luxury ones cost more, plus random variation.
func makeHotels() ([]repro.Tuple, []string) {
	rng := rand.New(rand.NewSource(3))
	var hotels []repro.Tuple
	var names []string
	kinds := []struct {
		name           string
		price, clean   float64
		loc, svc, wifi float64
	}{
		{"Budget Inn", 0.95, 0.45, 0.5, 0.35, 0.4},
		{"Midtown Suites", 0.6, 0.7, 0.75, 0.65, 0.7},
		{"Grand Palace", 0.25, 0.9, 0.85, 0.92, 0.85},
		{"Airport Lodge", 0.8, 0.55, 0.3, 0.5, 0.6},
	}
	for i := 0; i < 40; i++ {
		kind := kinds[i%len(kinds)]
		jit := func(v float64) float64 {
			v += 0.12 * rng.NormFloat64()
			if v < 0.05 {
				v = 0.05
			}
			if v > 1 {
				v = 1
			}
			return v
		}
		hotels = append(hotels, repro.FromDense([]float64{
			jit(kind.price), jit(kind.clean), jit(kind.loc), jit(kind.svc), jit(kind.wifi),
		}))
		names = append(names, fmt.Sprintf("%s #%d", kind.name, i/len(kinds)+1))
	}
	return hotels, names
}

func nameList(names []string, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = names[id]
	}
	return out
}
