// Quickstart: the paper's running example (Fig. 1) in ~40 lines.
//
// Four tuples in [0,1]², the query q=(0.8, 0.5), k=2. The library answers
// the query and reports, per dimension, how far each weight can move
// before the ranked result changes — and what it changes into.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	tuples := []repro.Tuple{
		repro.FromDense([]float64{0.8, 0.32}), // d1
		repro.FromDense([]float64{0.7, 0.5}),  // d2
		repro.FromDense([]float64{0.1, 0.8}),  // d3
		repro.FromDense([]float64{0.1, 0.6}),  // d4
	}
	eng := repro.NewEngine(tuples, 2)

	q, err := repro.NewQuery([]int{0, 1}, []float64{0.8, 0.5})
	if err != nil {
		log.Fatal(err)
	}

	a, err := eng.Analyze(q, 2, repro.Options{Method: repro.CPT})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top-2 result:")
	for rank, sc := range a.Result {
		fmt.Printf("  %d. tuple d%d (score %.2f)\n", rank+1, sc.ID+1, sc.Score)
	}

	fmt.Println("\nimmutable regions — how far each weight can move:")
	for _, reg := range a.Regions {
		fmt.Println("  " + repro.RenderSlider(q, reg, 44))
	}

	fmt.Println("\nwhat happens at the bounds:")
	base := a.RankedIDs()
	for _, reg := range a.Regions {
		if len(reg.Right) > 0 {
			next, _ := reg.ResultAfter(base, true, 0)
			fmt.Printf("  raise w%d past %+.4f → result becomes %v\n", reg.Dim+1, reg.Right[0].Delta, plusOne(next))
		}
		if len(reg.Left) > 0 {
			next, _ := reg.ResultAfter(base, false, 0)
			fmt.Printf("  lower w%d past %+.4f → result becomes %v\n", reg.Dim+1, reg.Left[0].Delta, plusOne(next))
		}
	}
}

// plusOne renders 0-based tuple ids as the paper's d1..d4 names.
func plusOne(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = fmt.Sprintf("d%d", id+1)
	}
	return out
}
