// Refinement: the safe-region economics of immutable regions.
//
// A refinement session wraps the engine and serves weight adjustments by
// the cheapest sound mechanism: a "safe skip" when the cross-polytope of
// the immutable regions (paper footnote 1) proves the result unchanged,
// a "local hit" when a precomputed φ-schedule already names the new
// result, and a full recomputation only otherwise. The program drives a
// simulated user fine-tuning four term weights and reports how many
// server-side analyses the regions saved.
//
// Run: go run ./examples/refinement
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/dataset"
)

func main() {
	corpus := dataset.GenerateWSJ(dataset.WSJConfig{Docs: 3000, Vocab: 5000, MeanTerms: 25, Seed: 13})
	eng := repro.NewEngine(corpus.Tuples, corpus.M)

	rng := rand.New(rand.NewSource(29))
	q, err := corpus.SampleQuery(rng, 4, 50)
	if err != nil {
		log.Fatal(err)
	}

	sess, err := eng.NewSession(q, 10, repro.Options{Method: repro.CPT, Phi: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial top-10: %v\n\n", sess.Result())

	// A simulated user nudging weights 40 times: mostly fine-grained
	// adjustments (the case the paper argues users actually make), a few
	// larger jumps.
	adjustments := 0
	changes := 0
	for i := 0; i < 40; i++ {
		jx := rng.Intn(q.Len())
		dim := sess.Query().Dims[jx]
		mag := 0.01
		if rng.Float64() < 0.2 {
			mag = 0.08
		}
		delta := mag * (rng.Float64()*2 - 1)
		cur := sess.Query().Weights[jx]
		if cur+delta <= 0.05 || cur+delta >= 0.95 {
			continue
		}
		changed, err := sess.AdjustWeight(dim, delta)
		if err != nil {
			log.Fatal(err)
		}
		adjustments++
		if changed {
			changes++
			fmt.Printf("adjustment %2d: term %-5d %+.3f → result changed to %v\n", adjustments, dim, delta, sess.Result())
		}
	}

	st := sess.Stats()
	fmt.Printf("\n%d adjustments, %d visible result changes\n", adjustments, changes)
	fmt.Printf("served by: %d safe skips, %d local hits, %d full analyses (incl. the initial one)\n",
		st.SafeSkips, st.LocalHits, st.Recomputes)
	saved := float64(st.SafeSkips+st.LocalHits) / float64(adjustments) * 100
	fmt.Printf("the immutable regions avoided %.0f%% of server round-trips\n", saved)
}
