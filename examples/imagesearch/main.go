// Imagesearch: feature-weight tuning on an image database — the paper's
// KB scenario (§7.1), including a cost comparison of all four algorithms
// on the same query.
//
// An image search engine ranks images by a weighted combination of
// feature activations (color, texture, quality, ...). The immutable
// regions tell the user which feature weights the current page of
// results is robust to. The example also shows why CPT matters: it
// prints how many candidates each algorithm variant had to examine and
// the modeled I/O cost on a spinning disk.
//
// Run: go run ./examples/imagesearch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/dataset"
	"repro/internal/storage"
)

func main() {
	// ~6000 images with moderately correlated feature blocks, standing
	// in for the KB dataset (see DESIGN.md on the substitution).
	images := dataset.GenerateKB(dataset.KBConfig{Images: 6000, Features: 900, Seed: 21})
	eng := repro.NewEngine(images.Tuples, images.M)

	// Eight feature dimensions with user-tuned weights.
	rng := rand.New(rand.NewSource(5))
	q, err := images.SampleQuery(rng, 8, 80)
	if err != nil {
		log.Fatal(err)
	}

	const k = 10
	a, err := eng.Analyze(q, k, repro.Options{Method: repro.CPT})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d images for %d-feature query: %v\n\n", k, q.Len(), a.RankedIDs())
	fmt.Println("robustness of the result page per feature weight:")
	for _, reg := range a.Regions {
		fmt.Println("  " + repro.RenderSlider(q, reg, 40))
	}

	fmt.Println("\nalgorithm comparison on this query:")
	fmt.Printf("  %-6s %12s %14s %14s %12s\n", "method", "evaluated", "modeled I/O", "CPU", "memory")
	for _, m := range []repro.Method{repro.Scan, repro.Thres, repro.Prune, repro.CPT} {
		res, err := eng.Analyze(q, k, repro.Options{Method: m})
		if err != nil {
			log.Fatal(err)
		}
		met := res.Metrics
		io := storage.DefaultDiskModel.Time(met.SeqPages, met.RandReads)
		fmt.Printf("  %-6v %12d %14v %14v %10dB\n", m, met.Evaluated, io, met.CPU().Round(1000), met.MemBytes)
	}
}
