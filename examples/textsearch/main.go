// Textsearch: iterative query refinement on a document corpus — the
// paper's §1 motivating application.
//
// A user searches a TF-IDF vector-space corpus with weighted terms. The
// immutable regions tell her exactly how far each term weight must move
// to visibly change the top-10, so she never wastes a refinement step on
// a minuscule adjustment. The program simulates three refinement rounds:
// each round bumps the weight of the most sensitive term just past its
// region bound and re-runs the query.
//
// Run: go run ./examples/textsearch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/dataset"
)

func main() {
	// A ~4000-document synthetic corpus standing in for WSJ (see
	// DESIGN.md on the substitution).
	corpus := dataset.GenerateWSJ(dataset.WSJConfig{Docs: 4000, Vocab: 6000, MeanTerms: 30, Seed: 7})
	eng := repro.NewEngine(corpus.Tuples, corpus.M)

	// Four query terms with TF-IDF-style weights.
	rng := rand.New(rand.NewSource(11))
	q, err := corpus.SampleQuery(rng, 4, 60)
	if err != nil {
		log.Fatal(err)
	}

	const k = 10
	for round := 1; round <= 3; round++ {
		a, err := eng.Analyze(q, k, repro.Options{Method: repro.CPT})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== round %d: query terms %v, weights %.3f ===\n", round, q.Dims, q.Weights)
		fmt.Printf("top-%d documents: %v\n", k, a.RankedIDs())
		for _, reg := range a.Regions {
			fmt.Println("  " + repro.RenderSlider(q, reg, 40))
		}
		fmt.Printf("  (CPT evaluated %.1f candidates/term; Scan would have evaluated %d)\n",
			a.Metrics.EvaluatedPerDimAvg(), scanCount(eng, q, k))

		// Pick the most sensitive term: the narrowest upward headroom
		// with a known perturbation, and push just past the bound.
		best := -1
		bestHi := 2.0
		for i, reg := range a.Regions {
			if len(reg.Right) > 0 && reg.Hi < bestHi {
				best, bestHi = i, reg.Hi
			}
		}
		if best < 0 {
			fmt.Println("no upward perturbation available; stopping")
			return
		}
		reg := a.Regions[best]
		next, err := reg.ResultAfter(a.RankedIDs(), true, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("refining: +%.4f on term %d flips the result to %v\n\n", reg.Hi+1e-6, reg.Dim, next)
		q = q.Adjust(reg.Dim, reg.Hi+1e-6)
	}
}

// scanCount runs the baseline for comparison and returns its evaluated
// candidate total.
func scanCount(eng *repro.Engine, q repro.Query, k int) int {
	a, err := eng.Analyze(q, k, repro.Options{Method: repro.Scan})
	if err != nil {
		log.Fatal(err)
	}
	return a.Metrics.Evaluated
}
