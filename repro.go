// Package repro is a Go implementation of "Computing Immutable Regions
// for Subspace Top-k Queries" (Mouratidis & Pang, PVLDB 6(2), 2013).
//
// Given a dataset of sparse vectors in [0,1]^m and a linear subspace
// top-k query, the library answers the query with the threshold
// algorithm over per-dimension inverted lists and then computes, for
// every query dimension, the immutable region: the widest range of
// weight deviations within which the ranked result provably does not
// change — plus, for φ > 0, the next φ perturbations on each side and
// the exact result in every region between them.
//
// Quick start:
//
//	eng := repro.NewEngine(tuples, m)
//	a, err := eng.Analyze(q, 10, repro.Options{Method: repro.CPT})
//	for _, reg := range a.Regions { fmt.Println(repro.RenderSlider(q, reg, 40)) }
//
// The heavy lifting lives in internal packages: internal/engine is the
// unified execution layer every entry point shares (validation, the
// immutable-region answer cache, batching, cancellation),
// internal/core holds the Scan/Prune/Thres/CPT algorithms,
// internal/topk the resumable TA, internal/geom the envelope geometry,
// internal/storage the disk layer.
package repro

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lists"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/topk"
	"repro/internal/vec"
)

// Entry is one non-zero coordinate of a tuple.
type Entry = vec.Entry

// Tuple is a sparse vector in [0,1]^m.
type Tuple = vec.Sparse

// Query is a subspace top-k query: weights over a subset of dimensions.
type Query = vec.Query

// NewQuery validates and builds a query from parallel dims/weights.
func NewQuery(dims []int, weights []float64) (Query, error) { return vec.NewQuery(dims, weights) }

// NewTuple validates and builds a tuple from entries.
func NewTuple(entries []Entry) (Tuple, error) { return vec.NewSparse(entries) }

// FromDense converts dense coordinates to a Tuple.
func FromDense(coords []float64) Tuple { return vec.FromDense(coords) }

// ErrInvalid tags query-validation failures (bad k, out-of-range,
// duplicate or >64 dimensions, bad weights); test with errors.Is.
var ErrInvalid = engine.ErrInvalid

// ErrImmutable tags Apply calls on an engine without a write path
// (EngineConfig.ReadOnly); test with errors.Is.
var ErrImmutable = engine.ErrImmutable

// Method selects the region-computation algorithm.
type Method = core.Method

// Algorithm variants (§4–§5 of the paper): Scan is the baseline; CPT —
// candidate pruning plus thresholding — is the paper's contribution and
// the recommended default.
const (
	Scan  = core.MethodScan
	Prune = core.MethodPrune
	Thres = core.MethodThres
	CPT   = core.MethodCPT
)

// Options configures Analyze; see core.Options for field semantics.
type Options = core.Options

// Regions holds one dimension's immutable regions; see core.Regions.
type Regions = core.Regions

// Perturbation describes a result change at a region bound.
type Perturbation = core.Perturbation

// Metrics meters a region computation.
type Metrics = core.Metrics

// Scored is a tuple with its score and query-subspace projection.
type Scored = topk.Scored

// Analysis is the complete answer: the ranked top-k result and the
// immutable regions of every query dimension, plus how it was produced
// (Source reports whether the answer-cache served it). On cache hits
// the embedded result and regions are shared with the cache and must be
// treated as read-only.
type Analysis = engine.Analysis

// EngineConfig tunes an Engine beyond the zero-value defaults.
type EngineConfig struct {
	// MaxConcurrent caps concurrently executing queries (0 = default
	// 4×GOMAXPROCS, negative = unlimited).
	MaxConcurrent int
	// Parallelism fans one query's per-dimension region work over up to
	// n goroutines (0 = paper-literal sequential).
	Parallelism int
	// CacheEntries / CacheBytes bound the immutable-region answer cache
	// (0 = defaults; CacheEntries < 0 disables the cache).
	CacheEntries int
	CacheBytes   int64
	// VerifyChecksums makes OpenEngineWithConfig validate the dataset
	// files' integrity trailers before serving them.
	VerifyChecksums bool
	// ReadOnly disables the write path (Apply); opened datasets are then
	// served without the in-memory write overlay.
	ReadOnly bool
}

func (c EngineConfig) internal() engine.Config {
	return engine.Config{
		MaxConcurrent:   c.MaxConcurrent,
		Parallelism:     c.Parallelism,
		CacheEntries:    c.CacheEntries,
		CacheBytes:      c.CacheBytes,
		VerifyChecksums: c.VerifyChecksums,
		ReadOnly:        c.ReadOnly,
	}
}

// Engine answers top-k queries and computes immutable regions over one
// dataset. It is a thin facade over the unified execution layer
// (internal/engine): validation, per-query metering, the answer cache
// and cancellation all live there, shared with the HTTP server.
type Engine struct {
	eng *engine.Engine
}

// NewEngine indexes tuples (in [0,1]^m) in memory with default settings
// (answer cache enabled).
func NewEngine(tuples []Tuple, m int) *Engine {
	return NewEngineWithConfig(tuples, m, EngineConfig{})
}

// NewEngineWithConfig indexes tuples in memory with explicit settings.
// Unless cfg.ReadOnly is set the engine is mutable, so the tuples are
// deep-copied: Apply must write through engine-owned memory, never the
// caller's slice.
func NewEngineWithConfig(tuples []Tuple, m int, cfg EngineConfig) *Engine {
	if !cfg.ReadOnly {
		cp := make([]Tuple, len(tuples))
		for i, t := range tuples {
			cp[i] = t.Clone()
		}
		tuples = cp
	}
	return &Engine{eng: engine.New(lists.NewMemIndex(tuples, m), cfg.internal())}
}

// OpenEngine opens a dataset persisted with SaveDataset, reading through
// a buffer pool of poolPages pages, with default settings.
func OpenEngine(tuplePath, listPath string, poolPages int) (*Engine, error) {
	return OpenEngineWithConfig(tuplePath, listPath, poolPages, EngineConfig{})
}

// OpenEngineWithConfig opens a persisted dataset with explicit settings
// (including optional checksum verification of both files).
func OpenEngineWithConfig(tuplePath, listPath string, poolPages int, cfg EngineConfig) (*Engine, error) {
	eng, err := engine.Open(tuplePath, listPath, poolPages, cfg.internal())
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng}, nil
}

// ErrManifestMoved is returned by OpenEngineDir (and any lock-free
// read-only open) when every one of its engine.SnapshotOpenAttempts
// attempts raced a concurrent writer's checkpoint publication — the
// manifest moved, or the generation files were swept, mid-open each
// time. The directory is healthy; retry later or back off. Test with
// errors.Is(err, repro.ErrManifestMoved).
var ErrManifestMoved = engine.ErrManifestMoved

// OpenEngineDir opens a dataset directory read-only, following its
// checkpoint MANIFEST to the live file generation and replaying any
// write-ahead log so acknowledged update batches are served — the open
// every tool pointed at a durable irserver directory should use. The
// engine is always read-only: a facade Apply here would mutate state
// the directory's log never records (silently non-durable writes), so
// writes must go through the owning server (or engine.OpenDir with
// Config.WAL).
//
// Because no lock is taken, a live writer can publish a checkpoint
// mid-open; the open detects the moved manifest and retries against
// the new generation, up to engine.SnapshotOpenAttempts (4) times,
// after which it fails with the typed ErrManifestMoved rather than a
// misleading raw I/O error.
func OpenEngineDir(dir string, poolPages int, cfg EngineConfig) (*Engine, error) {
	icfg := cfg.internal()
	icfg.ReadOnly = true
	eng, err := engine.OpenDir(dir, poolPages, icfg)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng}, nil
}

// SaveDataset persists tuples and their inverted lists in the on-disk
// format OpenEngine reads.
func SaveDataset(tuplePath, listPath string, tuples []Tuple, m int) error {
	return lists.SaveDataset(tuplePath, listPath, tuples, m)
}

// VerifyDatasetFile re-reads a persisted dataset file and validates its
// integrity trailer (CRC32 over the full payload).
func VerifyDatasetFile(path string) error { return storage.VerifyChecksum(path) }

// Close releases any underlying files (no-op for in-memory engines).
func (e *Engine) Close() error { return e.eng.Close() }

// Stats exposes the engine's I/O meter.
func (e *Engine) Stats() *storage.IOStats { return e.eng.Stats() }

// CacheStats snapshots the answer cache's counters.
func (e *Engine) CacheStats() engine.CacheStats { return e.eng.CacheStats() }

// N returns the dataset cardinality.
func (e *Engine) N() int { return e.eng.N() }

// Dim returns the dataset dimensionality m.
func (e *Engine) Dim() int { return e.eng.Dim() }

// Tuple fetches one tuple by id (counted as a random I/O).
func (e *Engine) Tuple(id int) Tuple { return e.eng.Tuple(id) }

// TopK answers the query with the threshold algorithm and returns the
// ranked result. If a prior analysis' immutable regions contain the
// weight vector, the result is served from the answer cache without
// touching the index. It panics on an invalid query (k < 1 or a
// dimension outside the dataset), like indexing out of range; use
// TopKContext for an error-returning (and cancelable) variant.
func (e *Engine) TopK(q Query, k int) []Scored {
	res, err := e.TopKContext(context.Background(), q, k)
	if err != nil {
		panic(fmt.Sprintf("repro: TopK: %v", err))
	}
	return res
}

// TopKContext is TopK under a context, returning errors instead of
// panicking: an invalid query reports ErrInvalid (test with
// errors.Is), and cancellation aborts the scan mid-run with the
// context's error.
func (e *Engine) TopKContext(ctx context.Context, q Query, k int) ([]Scored, error) {
	res, _, err := e.eng.TopK(ctx, q, k)
	return res, err
}

// TraceStep is one row of a TA execution trace (the paper's Fig. 2).
type TraceStep = topk.TraceStep

// TopKTrace answers the query while recording every sorted access,
// returning the ranked result and the execution trace. Round-robin
// probing is used so traces match the paper's presentation. It panics
// on an invalid query, like TopK; use TopKTraceContext for an
// error-returning variant.
func (e *Engine) TopKTrace(q Query, k int) ([]Scored, []TraceStep) {
	res, steps, err := e.TopKTraceContext(context.Background(), q, k)
	if err != nil {
		panic(fmt.Sprintf("repro: TopKTrace: %v", err))
	}
	return res, steps
}

// TopKTraceContext is TopKTrace under a context, returning errors
// instead of panicking on invalid queries and aborting cleanly on
// cancellation.
func (e *Engine) TopKTraceContext(ctx context.Context, q Query, k int) ([]Scored, []TraceStep, error) {
	return e.eng.TopKTrace(ctx, q, k)
}

// Analyze answers the query and computes the immutable regions of every
// query dimension with the selected method (CPT by default semantics of
// the zero Options value is Scan; pass Method: repro.CPT for the paper's
// algorithm). Identical repeat queries are served from the answer cache
// with zero index I/O; check Analysis.Source for the disposition.
func (e *Engine) Analyze(q Query, k int, opts Options) (*Analysis, error) {
	return e.AnalyzeContext(context.Background(), q, k, opts)
}

// AnalyzeContext is Analyze under a context: cancellation aborts the
// query mid-computation, down to the TA round loop.
func (e *Engine) AnalyzeContext(ctx context.Context, q Query, k int, opts Options) (*Analysis, error) {
	return e.eng.Analyze(ctx, q, k, engine.Options{Options: opts})
}

// Op is one mutation of an Apply batch; OpKind selects insert, update
// or delete.
type Op = engine.Op

// OpKind selects a mutation.
type OpKind = engine.OpKind

// Mutation kinds for Op.Kind.
const (
	OpInsert = engine.OpInsert
	OpUpdate = engine.OpUpdate
	OpDelete = engine.OpDelete
)

// OpResult is the per-op outcome of an Apply batch.
type OpResult = engine.OpResult

// ApplyResult summarizes one Apply batch, including how many cached
// analyses survived the region-certified invalidation check.
type ApplyResult = engine.ApplyResult

// MutationStats snapshots the engine's write-path counters.
type MutationStats = engine.MutationStats

// Mutable reports whether this engine accepts Apply (in-memory engines
// do by default; opened datasets go through a write overlay unless
// EngineConfig.ReadOnly is set).
func (e *Engine) Mutable() bool { return e.eng.Mutable() }

// Apply executes a batch of tuple mutations. Cached analyses are kept
// serving whenever the immutable-region certificate proves the change
// cannot alter their result anywhere in their region polytope; only the
// rest are evicted. Ops apply independently in order, with per-op
// errors in ApplyResult.Results.
func (e *Engine) Apply(ops []Op) (ApplyResult, error) { return e.eng.Apply(ops) }

// MutationStats snapshots the write-path counters.
func (e *Engine) MutationStats() MutationStats { return e.eng.MutationStats() }

// Session is an iterative query-refinement session (§1's motivating
// workflow): weight adjustments are served without recomputation
// whenever the immutable regions prove the result unchanged (safe skip)
// or the φ-schedule already names the new result (local hit). See
// internal/session for the mechanism and Stats for the accounting.
type Session = session.Session

// SessionStats counts how a session's adjustments were served.
type SessionStats = session.Stats

// NewSession starts a refinement session on this engine. opts.Phi > 0
// enables local hits (precomputed perturbation schedules). Session
// recomputes go through the unified engine, so adjustments that revisit
// previously analyzed weights are additionally served by the answer
// cache.
func (e *Engine) NewSession(q Query, k int, opts Options) (*Session, error) {
	return session.New(func(q vec.Query, k int, opts core.Options) (*core.Output, error) {
		a, err := e.eng.Analyze(context.Background(), q, k, engine.Options{Options: opts})
		if err != nil {
			return nil, err
		}
		return a.Output, nil
	}, q, k, opts)
}

// SafeConcurrent reports whether shifting all query weights
// simultaneously by devs (parallel to the query dimensions of the
// analysis) provably preserves the ranked result — the cross-polytope
// test of the paper's footnote 1.
func SafeConcurrent(regions []Regions, devs []float64) (bool, error) {
	return core.SafeConcurrent(regions, devs)
}

// RenderSlider draws the paper's Fig. 1 slide-bar for one dimension: the
// weight axis [0,1] with the current weight and the immutable region's
// bounds marked.
//
//	dim 3  0 ───────────╢████════█████╟─────────── 1   q=0.50  IR=(-0.14,+0.21)
//
// '█' spans the immutable region, '═' is the current weight position.
func RenderSlider(q Query, reg Regions, width int) string {
	if width < 10 {
		width = 10
	}
	qj := q.Weights[reg.QPos]
	lo, hi := qj+reg.Lo, qj+reg.Hi
	pos := func(v float64) int {
		p := int(v * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	bar := make([]rune, width)
	for i := range bar {
		bar[i] = '─'
	}
	for i := pos(lo); i <= pos(hi); i++ {
		bar[i] = '█'
	}
	bar[pos(qj)] = '═'
	var b strings.Builder
	fmt.Fprintf(&b, "dim %-5d 0 %s 1   q=%.3f  IR=(%+.4f, %+.4f)", reg.Dim, string(bar), qj, reg.Lo, reg.Hi)
	return b.String()
}
