package repro_test

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro"
	"repro/internal/engine"
	"repro/internal/fixture"
	"repro/internal/topk"
)

func exampleEngine() (*repro.Engine, repro.Query, int) {
	tuples, q, k := fixture.RunningExample()
	return repro.NewEngine(tuples, 2), q, k
}

func TestEngineTopK(t *testing.T) {
	eng, q, k := exampleEngine()
	res := eng.TopK(q, k)
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 0 {
		t.Fatalf("TopK = %+v", res)
	}
	if eng.N() != 4 || eng.Dim() != 2 {
		t.Fatalf("N=%d Dim=%d", eng.N(), eng.Dim())
	}
}

func TestEngineAnalyze(t *testing.T) {
	eng, q, k := exampleEngine()
	a, err := eng.Analyze(q, k, repro.Options{Method: repro.CPT})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Regions) != 2 {
		t.Fatalf("%d regions", len(a.Regions))
	}
	if math.Abs(a.Regions[0].Lo-(-16.0/35)) > 1e-12 || math.Abs(a.Regions[0].Hi-0.1) > 1e-12 {
		t.Fatalf("IR1 = (%v, %v)", a.Regions[0].Lo, a.Regions[0].Hi)
	}
	if a.Metrics.Evaluated == 0 {
		t.Fatal("no metering")
	}
}

func TestEngineDiskRoundTrip(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	dir := t.TempDir()
	tp, lp := filepath.Join(dir, "t.dat"), filepath.Join(dir, "l.dat")
	if err := repro.SaveDataset(tp, lp, tuples, 2); err != nil {
		t.Fatal(err)
	}
	eng, err := repro.OpenEngine(tp, lp, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	a, err := eng.Analyze(q, k, repro.Options{Method: repro.CPT})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Regions[1].Lo-(-1.0/18)) > 1e-12 || math.Abs(a.Regions[1].Hi-0.5) > 1e-12 {
		t.Fatalf("IR2 = (%v, %v)", a.Regions[1].Lo, a.Regions[1].Hi)
	}
	if eng.Stats().RandReads() == 0 {
		t.Fatal("disk engine did not count I/O")
	}
}

// TestSessionOverDiskIndex is the end-to-end refinement workflow over a
// persisted dataset: a session opened through the unified engine (with
// checksum verification on), serving adjustments by safe skip, local
// hit and disk-backed recompute, each verified against ground truth.
func TestSessionOverDiskIndex(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	dir := t.TempDir()
	tp, lp := filepath.Join(dir, "tuples.dat"), filepath.Join(dir, "lists.dat")
	if err := repro.SaveDataset(tp, lp, tuples, 2); err != nil {
		t.Fatal(err)
	}
	eng, err := repro.OpenEngineWithConfig(tp, lp, 16, repro.EngineConfig{VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	sess, err := eng.NewSession(q, k, repro.Options{Method: repro.CPT, Phi: 1})
	if err != nil {
		t.Fatal(err)
	}
	check := func(step string) {
		t.Helper()
		want := topk.TopKNaive(tuples, sess.Query(), k)
		got := sess.Result()
		for i := range want {
			if got[i] != want[i].ID {
				t.Fatalf("%s: session result %v, requery %v", step, got, want)
			}
		}
	}
	// IR1 = (−16/35, +0.1): +0.05 is provably safe — no disk touched.
	seq0, rnd0, _ := eng.Stats().Snapshot()
	if changed, err := sess.AdjustWeight(0, 0.05); err != nil || changed {
		t.Fatalf("safe skip: changed=%v err=%v", changed, err)
	}
	if seq1, rnd1, _ := eng.Stats().Snapshot(); seq1 != seq0 || rnd1 != rnd0 {
		t.Fatal("safe skip touched the disk")
	}
	check("safe skip")
	// +0.10 more crosses the reorder bound at +0.1: the φ=1 schedule
	// answers locally.
	if changed, err := sess.AdjustWeight(0, 0.10); err != nil || !changed {
		t.Fatalf("local hit: changed=%v err=%v", changed, err)
	}
	check("local hit")
	// A large move on the other dimension forces a disk-backed recompute
	// through the engine.
	if _, err := sess.AdjustWeight(1, 0.4); err != nil {
		t.Fatal(err)
	}
	check("recompute")
	st := sess.Stats()
	if st.SafeSkips != 1 || st.LocalHits != 1 || st.Recomputes != 2 {
		t.Fatalf("session stats %+v", st)
	}
}

// TestFacadeCache smokes the answer cache through the public facade: a
// repeat Analyze is served (Source hit) with zero index I/O and
// identical regions, and CacheStats reports it.
func TestFacadeCache(t *testing.T) {
	eng, q, k := exampleEngine()
	first, err := eng.Analyze(q, k, repro.Options{Method: repro.CPT, Phi: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq0, rnd0, _ := eng.Stats().Snapshot()
	second, err := eng.Analyze(q, k, repro.Options{Method: repro.CPT, Phi: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq1, rnd1, _ := eng.Stats().Snapshot(); seq1 != seq0 || rnd1 != rnd0 {
		t.Fatal("facade cache hit touched the index")
	}
	if second.Source.String() != "hit" {
		t.Fatalf("second source %v", second.Source)
	}
	if !reflect.DeepEqual(first.Regions, second.Regions) {
		t.Fatal("cached regions diverge")
	}
	if st := eng.CacheStats(); st.Hits != 1 {
		t.Fatalf("cache stats %+v", st)
	}
}

func TestNewQueryNewTuple(t *testing.T) {
	if _, err := repro.NewQuery([]int{0}, []float64{2}); err == nil {
		t.Fatal("invalid weight accepted")
	}
	tp, err := repro.NewTuple([]repro.Entry{{Dim: 3, Val: 0.5}})
	if err != nil || tp.Get(3) != 0.5 {
		t.Fatalf("NewTuple: %v %v", tp, err)
	}
	if got := repro.FromDense([]float64{0, 0.25}); got.Get(1) != 0.25 {
		t.Fatalf("FromDense: %v", got)
	}
}

func TestRenderSlider(t *testing.T) {
	eng, q, k := exampleEngine()
	a, err := eng.Analyze(q, k, repro.Options{Method: repro.CPT})
	if err != nil {
		t.Fatal(err)
	}
	s := repro.RenderSlider(q, a.Regions[0], 40)
	if !strings.Contains(s, "█") || !strings.Contains(s, "═") {
		t.Fatalf("slider missing marks: %q", s)
	}
	if !strings.Contains(s, "IR=(-0.4571, +0.1000)") {
		t.Fatalf("slider bounds wrong: %q", s)
	}
	// Tiny width is clamped, not broken.
	if short := repro.RenderSlider(q, a.Regions[1], 3); !strings.Contains(short, "dim") {
		t.Fatalf("short slider: %q", short)
	}
}

// TestTopKContextErrorPaths: the error-returning facade variants must
// report invalid queries and cancellation as errors — the legacy
// panicking TopK/TopKTrace are for literal-style code only.
func TestTopKContextErrorPaths(t *testing.T) {
	eng, q, k := exampleEngine()

	if _, err := eng.TopKContext(context.Background(), q, 0); !errors.Is(err, repro.ErrInvalid) {
		t.Fatalf("k=0 err %v, want ErrInvalid", err)
	}
	bad := repro.Query{Dims: []int{0, 99}, Weights: []float64{0.5, 0.5}}
	if _, err := eng.TopKContext(context.Background(), bad, k); !errors.Is(err, repro.ErrInvalid) {
		t.Fatalf("out-of-range dim err %v, want ErrInvalid", err)
	}
	if _, _, err := eng.TopKTraceContext(context.Background(), bad, k); !errors.Is(err, repro.ErrInvalid) {
		t.Fatalf("trace out-of-range dim err %v, want ErrInvalid", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.TopKContext(ctx, q, k); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx err %v, want context.Canceled", err)
	}
	if _, _, err := eng.TopKTraceContext(ctx, q, k); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled trace err %v, want context.Canceled", err)
	}

	// Valid paths still agree with the panicking variants.
	got, err := eng.TopKContext(context.Background(), q, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, eng.TopK(q, k)) {
		t.Fatal("TopKContext and TopK diverge")
	}
}

// TestFacadeApply: the write path end to end through the public facade.
func TestFacadeApply(t *testing.T) {
	eng, q, k := exampleEngine()
	if !eng.Mutable() {
		t.Fatal("in-memory facade engine is not mutable")
	}
	before := eng.TopK(q, k)

	res, err := eng.Apply([]repro.Op{
		{Kind: repro.OpInsert, Tuple: repro.FromDense([]float64{0.95, 0.95})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Results[0].ID != 4 {
		t.Fatalf("apply result %+v", res)
	}
	after := eng.TopK(q, k)
	if after[0].ID != 4 || reflect.DeepEqual(before, after) {
		t.Fatalf("insert invisible: before %v after %v", before, after)
	}
	if st := eng.MutationStats(); st.Inserts != 1 || st.Batches != 1 {
		t.Fatalf("mutation stats %+v", st)
	}

	ro := repro.NewEngineWithConfig(fixtureTuples(), 2, repro.EngineConfig{ReadOnly: true})
	if _, err := ro.Apply([]repro.Op{{Kind: repro.OpDelete, ID: 0}}); !errors.Is(err, repro.ErrImmutable) {
		t.Fatalf("read-only facade err %v, want ErrImmutable", err)
	}
}

func fixtureTuples() []repro.Tuple {
	tuples, _, _ := fixture.RunningExample()
	return tuples
}

// TestOpenEngineDirReplaysWAL is the two-tools-one-directory pin: a
// durable server (engine.OpenDir with WAL) acknowledges a write that is
// not yet checkpointed; any other tool opening the directory through
// the facade must serve it — following the manifest alone and reading
// the stale files would silently drop acknowledged batches.
func TestOpenEngineDirReplaysWAL(t *testing.T) {
	tuples, q, k := fixture.RunningExample()
	dir := t.TempDir()
	if err := repro.SaveDataset(filepath.Join(dir, "tuples.dat"), filepath.Join(dir, "lists.dat"), tuples, 2); err != nil {
		t.Fatal(err)
	}
	srv, err := engine.OpenDir(dir, 64, engine.Config{WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Apply([]engine.Op{
		{Kind: engine.OpInsert, Tuple: repro.FromDense([]float64{0.95, 0.95})},
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	eng, err := repro.OpenEngineDir(dir, 64, repro.EngineConfig{VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res := eng.TopK(q, k)
	if len(res) == 0 || res[0].ID != 4 {
		t.Fatalf("facade dir open missed the WAL-resident insert: %+v", res)
	}
}
